//! Fault injection and adversarial scheduling.
//!
//! The paper's headline trade-off — accepting a small failure probability
//! buys small state — raises the follow-up question of what the protocols
//! do under *adversarial execution*: transient state corruption
//! (self-stabilisation in the spirit of the shuffling/load-balancing
//! consensus line), mid-run opinion injection, crash-and-rejoin churn, and
//! biased pair schedulers. This module is the engine-level vocabulary for
//! those experiments:
//!
//! * [`FaultHook`] — one scheduled strike (a parallel time, a fraction of
//!   agents, a [`Replacement`]); concrete hooks are [`Corrupt`],
//!   [`Inject`] and [`Churn`]. A [`FaultPlan`] composes any number of
//!   hooks.
//! * [`Scheduler`] — a pair-selection bias honored by all three engines:
//!   per-opinion participation weights (the opinion-starving adversary)
//!   and assortativity (the pair-biased, like-with-like adversary).
//!   [`UniformScheduler`], [`StarveScheduler`] and [`PairBiasScheduler`]
//!   are provided.
//! * [`FaultRecord`] — the recovery bookkeeping attached to
//!   [`RunResult`](crate::RunResult) by the engines' `run_faulted`
//!   methods: output before the strike, time to reconverge, output after.
//! * [`FaultSpec`] / [`SchedulerSpec`] — the `Clone + FromStr + Display`
//!   surface the experiment CLI and run manifests use, so a fault
//!   configuration round-trips through `--faults`/`--scheduler` flags and
//!   JSON manifests losslessly.
//!
//! All fault and scheduler randomness is drawn from the engine's own RNG
//! stream, so a (seed, plan, scheduler) triple replays byte-identically —
//! the same determinism contract the clean engines already honor.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::batch::multinomial::{binomial, multinomial_into};
use crate::batch::TableProtocol;
use crate::protocol::SimRng;

/// What a struck agent's state is replaced with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Replacement {
    /// A uniformly random protocol state (transient corruption).
    Random,
    /// A fresh agent holding the given opinion (mid-run injection).
    Opinion(u32),
    /// A fresh agent re-drawn from the initial configuration (an agent
    /// crashes, loses its state, and rejoins as if newly arrived).
    Rejoin,
}

/// One fault strike, fully resolved: which fraction of agents, replaced
/// with what. Produced by [`FaultHook::action`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultAction {
    /// Independent probability that any given agent is struck.
    pub frac: f64,
    /// Replacement applied to struck agents.
    pub replacement: Replacement,
}

/// A fault hook: fires once, at a scheduled parallel time, striking a
/// random fraction of the population.
///
/// Hooks are deliberately *declarative* (a time plus a [`FaultAction`])
/// rather than closures over engine state: the same hook must apply to a
/// per-agent state vector (sequential engine) and to a counts vector
/// (batched engines) without knowing which it runs on.
pub trait FaultHook: Send + Sync + fmt::Debug {
    /// Parallel time at which the hook fires.
    fn at(&self) -> f64;

    /// The strike to apply.
    fn action(&self) -> FaultAction;

    /// Label recorded in [`FaultRecord`]s and run manifests.
    fn describe(&self) -> String;
}

/// Transient state corruption: each agent is flipped to a uniformly random
/// protocol state with probability `frac`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corrupt {
    /// Parallel time of the strike.
    pub at: f64,
    /// Fraction of agents struck.
    pub frac: f64,
}

impl FaultHook for Corrupt {
    fn at(&self) -> f64 {
        self.at
    }

    fn action(&self) -> FaultAction {
        FaultAction {
            frac: self.frac,
            replacement: Replacement::Random,
        }
    }

    fn describe(&self) -> String {
        format!("corrupt@{}:{}", self.at, self.frac)
    }
}

/// Mid-run opinion injection: each agent is replaced by a fresh agent
/// holding `opinion` with probability `frac` — the adversary floods the
/// population with a chosen (typically runner-up) opinion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inject {
    /// Parallel time of the strike.
    pub at: f64,
    /// Fraction of agents struck.
    pub frac: f64,
    /// The injected opinion.
    pub opinion: u32,
}

impl FaultHook for Inject {
    fn at(&self) -> f64 {
        self.at
    }

    fn action(&self) -> FaultAction {
        FaultAction {
            frac: self.frac,
            replacement: Replacement::Opinion(self.opinion),
        }
    }

    fn describe(&self) -> String {
        format!("inject@{}:{}:{}", self.at, self.frac, self.opinion)
    }
}

/// Crash-and-rejoin churn: each agent crashes with probability `frac`,
/// losing all protocol state, and rejoins immediately as a fresh agent in
/// an initial-configuration state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// Parallel time of the strike.
    pub at: f64,
    /// Fraction of agents churned.
    pub frac: f64,
}

impl FaultHook for Churn {
    fn at(&self) -> f64 {
        self.at
    }

    fn action(&self) -> FaultAction {
        FaultAction {
            frac: self.frac,
            replacement: Replacement::Rejoin,
        }
    }

    fn describe(&self) -> String {
        format!("churn@{}:{}", self.at, self.frac)
    }
}

/// A composable schedule of fault hooks.
#[derive(Debug, Default)]
pub struct FaultPlan {
    hooks: Vec<Box<dyn FaultHook>>,
}

impl FaultPlan {
    /// An empty plan (no faults; `run_faulted` degenerates to `run`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a hook (builder style).
    #[must_use]
    pub fn with(mut self, hook: impl FaultHook + 'static) -> Self {
        self.hooks.push(Box::new(hook));
        self
    }

    /// Add a boxed hook.
    pub fn push(&mut self, hook: Box<dyn FaultHook>) {
        self.hooks.push(hook);
    }

    /// Whether the plan contains no hooks.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }

    /// Number of hooks.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// The hooks resolved to `(at, action, label)` triples, sorted by
    /// firing time — the form the engines consume.
    pub fn schedule(&self) -> Vec<(f64, FaultAction, String)> {
        let mut epochs: Vec<(f64, FaultAction, String)> = self
            .hooks
            .iter()
            .map(|h| (h.at(), h.action(), h.describe()))
            .collect();
        epochs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fault times"));
        epochs
    }

    /// Build a plan from CLI/manifest-level specs.
    pub fn from_specs(specs: &[FaultSpec]) -> Self {
        let mut plan = Self::new();
        for s in specs {
            plan.push(s.hook());
        }
        plan
    }
}

/// Recovery bookkeeping for one fired fault hook, attached to
/// [`RunResult::faults`](crate::RunResult).
///
/// `recovery_time` is `NaN` when the run never reconverged after the
/// strike (either the budget ran out or a later hook struck first —
/// strikes supersede: only the most recent one is tracked for recovery).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Parallel time at which the hook actually fired.
    pub at: f64,
    /// The hook's [`FaultHook::describe`] label.
    pub hook: String,
    /// Converged output immediately before the strike (`None`: the run had
    /// not converged when the fault hit).
    pub output_before: Option<u32>,
    /// Output at the first reconvergence after the strike (`None`: never
    /// reconverged).
    pub output_after: Option<u32>,
    /// Parallel time from the strike to the first reconvergence (`NaN` if
    /// the run never reconverged).
    pub recovery_time: f64,
}

impl FaultRecord {
    /// Whether the run reconverged after this strike.
    pub fn recovered(&self) -> bool {
        self.recovery_time.is_finite()
    }

    /// Whether the pre-strike winner survived the strike: the run was
    /// converged when the fault hit and reconverged to the same output.
    pub fn winner_survived(&self) -> bool {
        self.output_before.is_some() && self.output_before == self.output_after
    }
}

// ---------------------------------------------------------------------------
// Schedulers.

/// Bound on rejection-sampling retries in biased pair draws. Adversarial
/// weights degrade the bias rather than livelock the engine: after this
/// many rejected draws the last candidate is accepted unconditionally.
pub const SCHEDULER_RETRIES: u32 = 16;

/// Consecutive fully-exhausted rejection loops after which the sequential
/// engine declares the scheduler saturated (every candidate vetoed — e.g.
/// the starved opinion is the only one left at weight 0), degrades to
/// uniform sampling for the rest of the run, and records
/// [`RunNote::SchedulerSaturated`](crate::RunNote).
pub const SCHEDULER_SATURATION_STREAK: u32 = 3;

/// A pair-selection bias, honored by all three engines.
///
/// Schedulers are expressed over *opinions* (via
/// [`Protocol::opinion_of`](crate::Protocol::opinion_of) /
/// [`TableProtocol::opinion`]) so one scheduler applies uniformly to
/// per-agent protocols and transition tables. Two knobs compose:
///
/// * [`opinion_weight`](Scheduler::opinion_weight) — the relative
///   probability, in `(0, 1]`, that an agent advocating a given opinion is
///   drawn as a participant (1 everywhere = the uniform scheduler). The
///   sequential engine realizes this by bounded rejection sampling, the
///   batched engines by weighted multinomial tallies.
/// * [`assortativity`](Scheduler::assortativity) — the probability that
///   the responder is forced to share the initiator's opinion
///   (like-with-like pairing), starving the cross-opinion interactions
///   most protocols rely on.
pub trait Scheduler: Send + Sync + fmt::Debug {
    /// Display/manifest name (matches the [`SchedulerSpec`] spelling).
    fn describe(&self) -> String;

    /// Relative weight in `(0, 1]` with which an agent advocating
    /// `opinion` is drawn (`None` = undecided/helper agents).
    fn opinion_weight(&self, opinion: Option<u32>) -> f64 {
        let _ = opinion;
        1.0
    }

    /// Probability that the responder is forced to share the initiator's
    /// opinion.
    fn assortativity(&self) -> f64 {
        0.0
    }
}

/// The uniform scheduler — identical to passing no scheduler at all.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UniformScheduler;

impl Scheduler for UniformScheduler {
    fn describe(&self) -> String {
        "uniform".to_string()
    }
}

/// The opinion-starving adversary: agents advocating `opinion` participate
/// with relative weight `weight < 1`, slowing every interaction the
/// opinion is part of.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarveScheduler {
    /// The starved opinion.
    pub opinion: u32,
    /// Relative participation weight in `(0, 1)`.
    pub weight: f64,
}

impl Scheduler for StarveScheduler {
    fn describe(&self) -> String {
        format!("starve:{}:{}", self.opinion, self.weight)
    }

    fn opinion_weight(&self, opinion: Option<u32>) -> f64 {
        if opinion == Some(self.opinion) {
            // Weight 0 is meaningful: it makes saturation (the starved
            // opinion is the only one left, so every candidate is vetoed)
            // reachable. The engines detect that case, degrade to uniform
            // sampling and record `RunNote::SchedulerSaturated`.
            self.weight.clamp(0.0, 1.0)
        } else {
            1.0
        }
    }
}

/// The pair-biased adversary: with probability `assort` the responder is
/// forced to share the initiator's opinion, starving the cross-opinion
/// interactions consensus depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairBiasScheduler {
    /// Probability of a forced like-with-like pairing.
    pub assort: f64,
}

impl Scheduler for PairBiasScheduler {
    fn describe(&self) -> String {
        format!("pairbias:{}", self.assort)
    }

    fn assortativity(&self) -> f64 {
        self.assort.clamp(0.0, 1.0)
    }
}

// ---------------------------------------------------------------------------
// Byzantine interaction adversaries.

/// A live opinion tally, the snapshot an adaptive adversary's forgery
/// choice sees once per batch/stride.
///
/// Built from `(opinion, support)` pairs by the engines — the sequential
/// engine tallies its state vector through
/// [`Protocol::opinion_of`](crate::Protocol::opinion_of), the batched
/// engines fold their counts vector through [`TableProtocol::opinion`] —
/// so one census type serves all three. Helper/undecided states (no
/// opinion) are not represented.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpinionCensus {
    tallies: Vec<(u32, u64)>,
}

impl OpinionCensus {
    /// A census from `(opinion, support)` pairs. Duplicate opinions are
    /// merged; zero-support entries are dropped.
    pub fn from_tallies(tallies: impl IntoIterator<Item = (u32, u64)>) -> Self {
        let mut merged: Vec<(u32, u64)> = Vec::new();
        for (op, c) in tallies {
            if c == 0 {
                continue;
            }
            match merged.iter_mut().find(|(o, _)| *o == op) {
                Some((_, total)) => *total += c,
                None => merged.push((op, c)),
            }
        }
        merged.sort_unstable();
        Self { tallies: merged }
    }

    /// The surviving `(opinion, support)` pairs, sorted by opinion.
    pub fn tallies(&self) -> &[(u32, u64)] {
        &self.tallies
    }

    /// The plurality opinion: maximum support, ties broken toward the
    /// smaller opinion id. `None` on an opinion-free census.
    pub fn leader(&self) -> Option<u32> {
        self.tallies
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|&(op, _)| op)
    }

    /// The strongest opinion that is not the leader (ties toward the
    /// smaller id). `None` unless at least two opinions survive.
    pub fn runner_up(&self) -> Option<u32> {
        let leader = self.leader()?;
        self.tallies
            .iter()
            .filter(|&&(op, _)| op != leader)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|&(op, _)| op)
    }

    /// The weakest surviving opinion: minimum support, ties broken toward
    /// the smaller opinion id. `None` on an opinion-free census.
    pub fn weakest(&self) -> Option<u32> {
        self.tallies
            .iter()
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|&(op, _)| op)
    }

    /// The weakest surviving opinion that is not the leader (ties toward
    /// the smaller id) — the one an anti-elimination adversary props up.
    /// `None` unless at least two opinions survive.
    pub fn weakest_non_leader(&self) -> Option<u32> {
        let leader = self.leader()?;
        self.tallies
            .iter()
            .filter(|&&(op, _)| op != leader)
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|&(op, _)| op)
    }
}

/// What liars claim this batch/stride, as chosen by
/// [`Adversary::forgery`] against the live census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forgery {
    /// A uniformly random protocol state per lie.
    Random,
    /// Every lie claims this opinion.
    Opinion(u32),
    /// Each lie claims one of the two opinions with probability ½ — the
    /// polarizing forgery that feeds both sides of a near-tie.
    Split(u32, u32),
}

/// A Byzantine interaction adversary: intercepts *individual* interactions
/// and makes a bounded fraction of participants lie about their state.
///
/// A liar reports a forged state to its partner while keeping its own
/// state; the honest partner transitions against the forgery. When both
/// participants lie, neither learns anything and the interaction is a
/// no-op. The sequential engine flips a per-agent coin for each
/// participant; the batched engines realize the same distribution through
/// an `O(S²)`-bounded binomial perturbation of the multinomial tally, so
/// the `n = 10⁸` fast path stays fast.
///
/// Like [`Scheduler`], adversaries are declarative — a lying probability
/// plus what the forgery is — so one adversary drives a per-agent state
/// vector and a counts vector alike.
pub trait Adversary: Send + Sync + fmt::Debug {
    /// Display/manifest name (matches the [`AdversarySpec`] spelling).
    fn describe(&self) -> String;

    /// Probability in `[0, 1]` that any given participant lies.
    fn lie_frac(&self) -> f64;

    /// The opinion liars claim to hold; `None` = a uniformly random
    /// protocol state per lie.
    fn forged_opinion(&self) -> Option<u32>;

    /// Whether the forgery depends on the live census. Engines skip the
    /// per-batch/per-stride census and refresh entirely when this is
    /// `false`, so static adversaries keep their exact cost (and RNG
    /// stream) from before adaptivity existed.
    fn adaptive(&self) -> bool {
        false
    }

    /// The forgery for the coming batch/stride, chosen against the live
    /// census. The default ignores the census and reproduces the static
    /// [`forged_opinion`](Adversary::forgery) behaviour, so non-adaptive
    /// adversaries implement nothing new. Must not draw randomness — the
    /// engines' replay contract assumes the census refresh is RNG-silent.
    fn forgery(&self, census: &OpinionCensus) -> Forgery {
        let _ = census;
        self.forged_opinion()
            .map_or(Forgery::Random, Forgery::Opinion)
    }
}

/// How an [`AdaptiveAdversary`] aims its lies at the live census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveStrategy {
    /// Every lie claims the current runner-up opinion — pumping the
    /// strongest rival to overturn the true plurality.
    BoostRunnerUp,
    /// Every lie claims the *weakest* surviving non-leader opinion — the
    /// anti-elimination attack that keeps insignificant opinions alive,
    /// directly targeting the paper's elimination phase.
    SuppressLeader,
    /// Lies split 50/50 between leader and runner-up, feeding both sides
    /// of the race to hold it at a tie.
    Split,
}

impl AdaptiveStrategy {
    /// The CLI/manifest spelling (`boost-runnerup`, `suppress-leader`,
    /// `split`).
    pub fn name(self) -> &'static str {
        match self {
            AdaptiveStrategy::BoostRunnerUp => "boost-runnerup",
            AdaptiveStrategy::SuppressLeader => "suppress-leader",
            AdaptiveStrategy::Split => "split",
        }
    }
}

impl FromStr for AdaptiveStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "boost-runnerup" => Ok(AdaptiveStrategy::BoostRunnerUp),
            "suppress-leader" => Ok(AdaptiveStrategy::SuppressLeader),
            "split" => Ok(AdaptiveStrategy::Split),
            _ => Err(format!(
                "adaptive strategy '{s}' is not boost-runnerup, suppress-leader or split"
            )),
        }
    }
}

/// The census-aware Byzantine liar: same bounded lie fraction as
/// [`ByzantineAdversary`], but the forged opinion is re-aimed at the live
/// census once per batch/stride according to an [`AdaptiveStrategy`].
///
/// Every strategy degrades gracefully as opinions die out: with a single
/// surviving opinion the runner-up/weakest targets vanish and the
/// adversary falls back to boosting that opinion ([`AdaptiveStrategy::Split`])
/// or to random forgeries (the targeted strategies); with no opinions at
/// all every strategy forges random states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveAdversary {
    /// Probability that any given participant lies.
    pub frac: f64,
    /// How lies are aimed at the census.
    pub strategy: AdaptiveStrategy,
}

impl Adversary for AdaptiveAdversary {
    fn describe(&self) -> String {
        AdversarySpec::Adaptive {
            frac: self.frac,
            strategy: self.strategy,
        }
        .to_string()
    }

    fn lie_frac(&self) -> f64 {
        self.frac.clamp(0.0, 1.0)
    }

    fn forged_opinion(&self) -> Option<u32> {
        None
    }

    fn adaptive(&self) -> bool {
        true
    }

    fn forgery(&self, census: &OpinionCensus) -> Forgery {
        match self.strategy {
            AdaptiveStrategy::BoostRunnerUp => {
                census.runner_up().map_or(Forgery::Random, Forgery::Opinion)
            }
            AdaptiveStrategy::SuppressLeader => census
                .weakest_non_leader()
                .map_or(Forgery::Random, Forgery::Opinion),
            AdaptiveStrategy::Split => match (census.leader(), census.runner_up()) {
                (Some(a), Some(b)) => Forgery::Split(a, b),
                (Some(a), None) => Forgery::Opinion(a),
                _ => Forgery::Random,
            },
        }
    }
}

/// The standard Byzantine liar: each participant independently lies with
/// probability `frac`, reporting either a fixed opinion or a uniformly
/// random state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantineAdversary {
    /// Probability that any given participant lies.
    pub frac: f64,
    /// Forged opinion (`None` = uniformly random state per lie).
    pub opinion: Option<u32>,
}

impl Adversary for ByzantineAdversary {
    fn describe(&self) -> String {
        AdversarySpec::Byzantine {
            frac: self.frac,
            opinion: self.opinion,
        }
        .to_string()
    }

    fn lie_frac(&self) -> f64 {
        self.frac.clamp(0.0, 1.0)
    }

    fn forged_opinion(&self) -> Option<u32> {
        self.opinion
    }
}

/// An adversary as CLI flag and manifest entry: `byz:FRAC` (random
/// forgeries), `byz:FRAC:OPINION` (fixed forged opinion) or
/// `adaptive:FRAC[:STRATEGY]` (census-aware forgeries; the strategy
/// defaults to `boost-runnerup`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversarySpec {
    /// See [`ByzantineAdversary`].
    Byzantine {
        /// Probability that any given participant lies.
        frac: f64,
        /// Forged opinion (`None` = uniformly random state per lie).
        opinion: Option<u32>,
    },
    /// See [`AdaptiveAdversary`].
    Adaptive {
        /// Probability that any given participant lies.
        frac: f64,
        /// How lies are aimed at the live census.
        strategy: AdaptiveStrategy,
    },
}

impl AdversarySpec {
    /// Instantiate the adversary this spec describes.
    pub fn build(&self) -> Arc<dyn Adversary> {
        match *self {
            AdversarySpec::Byzantine { frac, opinion } => {
                Arc::new(ByzantineAdversary { frac, opinion })
            }
            AdversarySpec::Adaptive { frac, strategy } => {
                Arc::new(AdaptiveAdversary { frac, strategy })
            }
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AdversarySpec::Byzantine {
                frac,
                opinion: Some(op),
            } => write!(f, "byz:{frac}:{op}"),
            AdversarySpec::Byzantine {
                frac,
                opinion: None,
            } => write!(f, "byz:{frac}"),
            // The strategy always prints, so the manifest spelling is
            // lossless even for the default.
            AdversarySpec::Adaptive { frac, strategy } => {
                write!(f, "adaptive:{frac}:{}", strategy.name())
            }
        }
    }
}

impl FromStr for AdversarySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || {
            format!("adversary '{s}' is not byz:FRAC, byz:FRAC:OPINION or adaptive:FRAC[:STRATEGY]")
        };
        let parts: Vec<&str> = s.split(':').collect();
        let frac_of = |v: &str| {
            v.parse::<f64>()
                .ok()
                .filter(|f| (0.0..=1.0).contains(f))
                .ok_or_else(err)
        };
        match parts.as_slice() {
            ["byz", frac] => Ok(AdversarySpec::Byzantine {
                frac: frac_of(frac)?,
                opinion: None,
            }),
            ["byz", frac, op] => Ok(AdversarySpec::Byzantine {
                frac: frac_of(frac)?,
                opinion: Some(op.parse::<u32>().map_err(|_| err())?),
            }),
            ["adaptive", frac] => Ok(AdversarySpec::Adaptive {
                frac: frac_of(frac)?,
                strategy: AdaptiveStrategy::BoostRunnerUp,
            }),
            ["adaptive", frac, strat] => Ok(AdversarySpec::Adaptive {
                frac: frac_of(frac)?,
                strategy: strat.parse().map_err(|_| err())?,
            }),
            _ => Err(err()),
        }
    }
}

/// Which agents a targeted churn process removes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ChurnTarget {
    /// Uniformly random departures — the classic churn model.
    #[default]
    Uniform,
    /// Departures drawn from agents advocating the current plurality
    /// opinion — the adversary bleeds the winner.
    Plurality,
    /// Departures drawn from agents advocating the weakest surviving
    /// opinion — accelerated elimination pressure.
    Minority,
}

impl ChurnTarget {
    /// The CLI/manifest spelling.
    pub fn name(self) -> &'static str {
        match self {
            ChurnTarget::Uniform => "uniform",
            ChurnTarget::Plurality => "plurality",
            ChurnTarget::Minority => "minority",
        }
    }
}

/// A steady-state churn process as CLI flag and manifest entry:
/// `churn:JOIN` (leave rate = join rate), `churn:JOIN:LEAVE`, or
/// `churn:JOIN:LEAVE:TARGET` (`plurality` / `minority` departure
/// targeting), rates in expected events per agent per unit of parallel
/// time.
///
/// Distinct from the one-shot [`FaultSpec::Churn`] epoch strike
/// (`churn@AT:FRAC`, note the `@`): this spec describes a *continuous*
/// Poisson join/leave process driven by
/// [`ChurnProcess`](crate::ChurnProcess).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChurnSpec {
    /// Expected joins per agent per unit of parallel time.
    pub join: f64,
    /// Expected leaves per agent per unit of parallel time.
    pub leave: f64,
    /// Which agents the departures hit.
    pub target: ChurnTarget,
}

impl fmt::Display for ChurnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Uniform spellings are unchanged from before targeting existed
        // (manifest stability); targeted churn always prints the 4-part
        // form.
        match self.target {
            ChurnTarget::Uniform if self.join == self.leave => write!(f, "churn:{}", self.join),
            ChurnTarget::Uniform => write!(f, "churn:{}:{}", self.join, self.leave),
            t => write!(f, "churn:{}:{}:{}", self.join, self.leave, t.name()),
        }
    }
}

impl FromStr for ChurnSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || {
            format!(
                "churn '{s}' is not churn:JOIN, churn:JOIN:LEAVE or churn:JOIN:LEAVE:TARGET \
                 (target: plurality or minority)"
            )
        };
        let rate_of = |v: &str| {
            v.parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r >= 0.0)
                .ok_or_else(err)
        };
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["churn", join] => {
                let join = rate_of(join)?;
                Ok(ChurnSpec {
                    join,
                    leave: join,
                    target: ChurnTarget::Uniform,
                })
            }
            ["churn", join, leave] => Ok(ChurnSpec {
                join: rate_of(join)?,
                leave: rate_of(leave)?,
                target: ChurnTarget::Uniform,
            }),
            ["churn", join, leave, target] => {
                let target = match *target {
                    "plurality" => ChurnTarget::Plurality,
                    "minority" => ChurnTarget::Minority,
                    // `uniform` is not accepted here: the uniform spelling
                    // is the 2-/3-part form, keeping Display∘FromStr
                    // canonical.
                    _ => return Err(err()),
                };
                Ok(ChurnSpec {
                    join: rate_of(join)?,
                    leave: rate_of(leave)?,
                    target,
                })
            }
            _ => Err(err()),
        }
    }
}

// ---------------------------------------------------------------------------
// CLI / manifest specs.

/// A fault hook as CLI flag and manifest entry: `corrupt@AT:FRAC`,
/// `inject@AT:FRAC:OPINION` or `churn@AT:FRAC`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// See [`Corrupt`].
    Corrupt {
        /// Parallel time of the strike.
        at: f64,
        /// Fraction of agents struck.
        frac: f64,
    },
    /// See [`Inject`].
    Inject {
        /// Parallel time of the strike.
        at: f64,
        /// Fraction of agents struck.
        frac: f64,
        /// The injected opinion.
        opinion: u32,
    },
    /// See [`Churn`].
    Churn {
        /// Parallel time of the strike.
        at: f64,
        /// Fraction of agents churned.
        frac: f64,
    },
}

impl FaultSpec {
    /// The concrete hook this spec describes.
    pub fn hook(&self) -> Box<dyn FaultHook> {
        match *self {
            FaultSpec::Corrupt { at, frac } => Box::new(Corrupt { at, frac }),
            FaultSpec::Inject { at, frac, opinion } => Box::new(Inject { at, frac, opinion }),
            FaultSpec::Churn { at, frac } => Box::new(Churn { at, frac }),
        }
    }

    /// Parse a comma-separated hook list (the `--faults` flag value).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse_list(s: &str) -> Result<Vec<FaultSpec>, String> {
        s.split(',')
            .filter(|p| !p.is_empty())
            .map(str::parse)
            .collect()
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultSpec::Corrupt { at, frac } => write!(f, "corrupt@{at}:{frac}"),
            FaultSpec::Inject { at, frac, opinion } => write!(f, "inject@{at}:{frac}:{opinion}"),
            FaultSpec::Churn { at, frac } => write!(f, "churn@{at}:{frac}"),
        }
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || {
            format!("fault '{s}' is not corrupt@AT:FRAC, inject@AT:FRAC:OPINION or churn@AT:FRAC")
        };
        let (kind, rest) = s.split_once('@').ok_or_else(err)?;
        let parts: Vec<&str> = rest.split(':').collect();
        let num = |v: &str| v.parse::<f64>().map_err(|_| err());
        let frac_ok = |frac: f64| (0.0..=1.0).contains(&frac);
        let at_ok = |at: f64| at.is_finite() && at >= 0.0;
        match (kind, parts.as_slice()) {
            ("corrupt", [at, frac]) => {
                let (at, frac) = (num(at)?, num(frac)?);
                (frac_ok(frac) && at_ok(at))
                    .then_some(FaultSpec::Corrupt { at, frac })
                    .ok_or_else(err)
            }
            ("inject", [at, frac, opinion]) => {
                let (at, frac) = (num(at)?, num(frac)?);
                let opinion = opinion.parse::<u32>().map_err(|_| err())?;
                (frac_ok(frac) && at_ok(at))
                    .then_some(FaultSpec::Inject { at, frac, opinion })
                    .ok_or_else(err)
            }
            ("churn", [at, frac]) => {
                let (at, frac) = (num(at)?, num(frac)?);
                (frac_ok(frac) && at_ok(at))
                    .then_some(FaultSpec::Churn { at, frac })
                    .ok_or_else(err)
            }
            _ => Err(err()),
        }
    }
}

/// A scheduler as CLI flag and manifest entry: `uniform`, `pairbias:A` or
/// `starve:OPINION:WEIGHT`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerSpec {
    /// See [`UniformScheduler`].
    Uniform,
    /// See [`PairBiasScheduler`].
    PairBias {
        /// Probability of a forced like-with-like pairing.
        assort: f64,
    },
    /// See [`StarveScheduler`].
    Starve {
        /// The starved opinion.
        opinion: u32,
        /// Relative participation weight in `(0, 1)`.
        weight: f64,
    },
}

impl SchedulerSpec {
    /// Instantiate the scheduler this spec describes.
    pub fn build(&self) -> Arc<dyn Scheduler> {
        match *self {
            SchedulerSpec::Uniform => Arc::new(UniformScheduler),
            SchedulerSpec::PairBias { assort } => Arc::new(PairBiasScheduler { assort }),
            SchedulerSpec::Starve { opinion, weight } => {
                Arc::new(StarveScheduler { opinion, weight })
            }
        }
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SchedulerSpec::Uniform => write!(f, "uniform"),
            SchedulerSpec::PairBias { assort } => write!(f, "pairbias:{assort}"),
            SchedulerSpec::Starve { opinion, weight } => write!(f, "starve:{opinion}:{weight}"),
        }
    }
}

impl FromStr for SchedulerSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err =
            || format!("scheduler '{s}' is not uniform, pairbias:ASSORT or starve:OPINION:WEIGHT");
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["uniform"] => Ok(SchedulerSpec::Uniform),
            ["pairbias", a] => {
                let assort = a.parse::<f64>().map_err(|_| err())?;
                (0.0..=1.0)
                    .contains(&assort)
                    .then_some(SchedulerSpec::PairBias { assort })
                    .ok_or_else(err)
            }
            ["starve", op, w] => {
                let opinion = op.parse::<u32>().map_err(|_| err())?;
                let weight = w.parse::<f64>().map_err(|_| err())?;
                (weight > 0.0 && weight <= 1.0)
                    .then_some(SchedulerSpec::Starve { opinion, weight })
                    .ok_or_else(err)
            }
            _ => Err(err()),
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration-level strike (shared by the batched engines).

/// A [`Forgery`] resolved to the batched engines' state space: what state
/// index (or pair of indices) liars report this batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LieTarget {
    /// A uniformly random state per lie.
    Random,
    /// Every lie reports this state.
    Fixed(usize),
    /// Each lie reports one of the two states with probability ½.
    Pair(usize, usize),
}

/// Resolve an opinion-level [`Forgery`] to the table's state space via
/// [`TableProtocol::opinion_state`]. Mirrors the sequential engine's
/// `fault_state` contract: an unmappable fixed opinion degrades to
/// honesty (`None`), a split with one unmappable side degrades to the
/// other side alone, and a fully unmappable split degrades to honesty.
pub fn resolve_forgery<P: TableProtocol + ?Sized>(
    protocol: &P,
    forgery: Forgery,
) -> Option<LieTarget> {
    match forgery {
        Forgery::Random => Some(LieTarget::Random),
        Forgery::Opinion(op) => protocol.opinion_state(op).map(LieTarget::Fixed),
        Forgery::Split(a, b) => match (protocol.opinion_state(a), protocol.opinion_state(b)) {
            (Some(a), Some(b)) => Some(LieTarget::Pair(a, b)),
            (Some(s), None) | (None, Some(s)) => Some(LieTarget::Fixed(s)),
            (None, None) => None,
        },
    }
}

/// Apply `action` to a configuration-space population: victims are drawn
/// by per-state binomial thinning (statistically identical to independent
/// per-agent coin flips, `O(S)` at any `n` — the reason the `n = 10⁸`
/// fast path stays fast), then re-inserted according to the replacement.
///
/// * [`Replacement::Random`] — victims scatter uniformly over the state
///   space.
/// * [`Replacement::Opinion`] — victims enter
///   [`TableProtocol::opinion_state`]; tables without a state for that
///   opinion degrade to a no-op strike (victims keep their states).
/// * [`Replacement::Rejoin`] — victims are re-drawn from the *initial*
///   configuration's distribution.
pub fn strike_counts<P: TableProtocol + ?Sized>(
    protocol: &P,
    counts: &mut [u64],
    initial: &[u64],
    action: &FaultAction,
    rng: &mut SimRng,
) {
    let frac = action.frac.clamp(0.0, 1.0);
    if frac <= 0.0 {
        return;
    }
    let mut victims = vec![0u64; counts.len()];
    let mut total = 0u64;
    for (c, v) in counts.iter_mut().zip(victims.iter_mut()) {
        *v = binomial(rng, *c, frac);
        *c -= *v;
        total += *v;
    }
    if total == 0 {
        return;
    }
    let mut out = Vec::new();
    match action.replacement {
        Replacement::Random => {
            let uniform = vec![1u64; counts.len()];
            multinomial_into(rng, total, &uniform, counts.len() as u64, &mut out);
        }
        Replacement::Opinion(op) => match protocol.opinion_state(op) {
            Some(s) => out.push((s, total)),
            None => out.extend(victims.iter().enumerate().map(|(s, &v)| (s, v))),
        },
        Replacement::Rejoin => {
            let initial_total: u64 = initial.iter().sum();
            multinomial_into(rng, total, initial, initial_total, &mut out);
        }
    }
    for (s, c) in out {
        counts[s] += c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Minimal 3-state table with opinions 1 and 2 on states 1 and 2.
    #[derive(Debug)]
    struct T3;
    impl TableProtocol for T3 {
        fn states(&self) -> usize {
            3
        }
        fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
            (a, b)
        }
        fn output(&self, _counts: &[u64]) -> Option<u32> {
            None
        }
        fn opinion(&self, s: usize) -> Option<u32> {
            (s > 0).then_some(s as u32)
        }
        fn opinion_state(&self, opinion: u32) -> Option<usize> {
            (1..=2).contains(&opinion).then_some(opinion as usize)
        }
    }

    #[test]
    fn specs_round_trip_through_display_and_parse() {
        let specs = [
            FaultSpec::Corrupt {
                at: 50.0,
                frac: 0.1,
            },
            FaultSpec::Inject {
                at: 12.5,
                frac: 0.25,
                opinion: 3,
            },
            FaultSpec::Churn {
                at: 80.0,
                frac: 0.05,
            },
        ];
        for s in specs {
            let printed = s.to_string();
            assert_eq!(printed.parse::<FaultSpec>(), Ok(s), "{printed}");
        }
        let joined = specs.map(|s| s.to_string()).join(",");
        assert_eq!(FaultSpec::parse_list(&joined), Ok(specs.to_vec()));

        for s in [
            SchedulerSpec::Uniform,
            SchedulerSpec::PairBias { assort: 0.3 },
            SchedulerSpec::Starve {
                opinion: 1,
                weight: 0.5,
            },
        ] {
            let printed = s.to_string();
            assert_eq!(printed.parse::<SchedulerSpec>(), Ok(s), "{printed}");
            assert_eq!(s.build().describe(), printed);
        }

        for s in [
            AdversarySpec::Byzantine {
                frac: 0.1,
                opinion: None,
            },
            AdversarySpec::Byzantine {
                frac: 0.25,
                opinion: Some(2),
            },
            AdversarySpec::Adaptive {
                frac: 0.05,
                strategy: AdaptiveStrategy::BoostRunnerUp,
            },
            AdversarySpec::Adaptive {
                frac: 0.1,
                strategy: AdaptiveStrategy::SuppressLeader,
            },
            AdversarySpec::Adaptive {
                frac: 0.0,
                strategy: AdaptiveStrategy::Split,
            },
        ] {
            let printed = s.to_string();
            assert_eq!(printed.parse::<AdversarySpec>(), Ok(s), "{printed}");
            assert_eq!(s.build().describe(), printed);
        }
        // The strategy-free spelling defaults to boost-runnerup.
        assert_eq!(
            "adaptive:0.1".parse::<AdversarySpec>(),
            Ok(AdversarySpec::Adaptive {
                frac: 0.1,
                strategy: AdaptiveStrategy::BoostRunnerUp,
            })
        );

        for s in [
            ChurnSpec {
                join: 0.01,
                leave: 0.01,
                target: ChurnTarget::Uniform,
            },
            ChurnSpec {
                join: 0.02,
                leave: 0.005,
                target: ChurnTarget::Uniform,
            },
            ChurnSpec {
                join: 0.01,
                leave: 0.01,
                target: ChurnTarget::Plurality,
            },
            ChurnSpec {
                join: 0.0,
                leave: 0.02,
                target: ChurnTarget::Minority,
            },
        ] {
            let printed = s.to_string();
            assert_eq!(printed.parse::<ChurnSpec>(), Ok(s), "{printed}");
        }
        // Uniform spellings are byte-identical to before targeting
        // existed; targeted churn always prints the 4-part form.
        assert_eq!(
            ChurnSpec {
                join: 0.01,
                leave: 0.01,
                target: ChurnTarget::Uniform,
            }
            .to_string(),
            "churn:0.01"
        );
        assert_eq!(
            ChurnSpec {
                join: 0.01,
                leave: 0.02,
                target: ChurnTarget::Plurality,
            }
            .to_string(),
            "churn:0.01:0.02:plurality"
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "corrupt",
            "corrupt@x:0.1",
            "corrupt@10:1.5",
            "corrupt@-5:0.1",
            "corrupt@inf:0.1",
            "inject@10:0.1",
            "inject@-1:0.1:2",
            "meteor@10:0.1",
            "",
        ] {
            assert!(bad.parse::<FaultSpec>().is_err(), "{bad:?} should fail");
        }
        for bad in ["warp", "pairbias:2.0", "starve:1:0", "starve:1"] {
            assert!(bad.parse::<SchedulerSpec>().is_err(), "{bad:?} should fail");
        }
        for bad in [
            "byz",
            "byz:1.5",
            "byz:-0.1",
            "byz:0.1:x",
            "lie:0.1",
            "",
            "adaptive",
            "adaptive:1.5",
            "adaptive:0.1:warp",
            "adaptive:0.1:boost-runnerup:2",
        ] {
            assert!(bad.parse::<AdversarySpec>().is_err(), "{bad:?} should fail");
        }
        for bad in [
            "churn",
            "churn:-1",
            "churn:0.1:-2",
            "churn:inf",
            "x:0.1",
            "churn:0.1:0.1:everyone",
            // `uniform` is not a valid 4th field — the uniform spelling is
            // the 2-/3-part form.
            "churn:0.1:0.1:uniform",
            "churn:0.1:0.1:plurality:9",
        ] {
            assert!(bad.parse::<ChurnSpec>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn byzantine_adversary_semantics() {
        let a = ByzantineAdversary {
            frac: 0.2,
            opinion: Some(1),
        };
        assert_eq!(a.lie_frac(), 0.2);
        assert_eq!(a.forged_opinion(), Some(1));
        assert_eq!(a.describe(), "byz:0.2:1");
        let random = ByzantineAdversary {
            frac: 1.5,
            opinion: None,
        };
        assert_eq!(random.lie_frac(), 1.0, "frac clamps into [0, 1]");
        assert_eq!(random.describe(), "byz:1.5");
        // Static adversaries are non-adaptive and their default forgery
        // ignores the census.
        assert!(!a.adaptive());
        let census = OpinionCensus::from_tallies([(1, 10), (2, 90)]);
        assert_eq!(a.forgery(&census), Forgery::Opinion(1));
        assert_eq!(random.forgery(&census), Forgery::Random);
    }

    #[test]
    fn census_extremes_and_tie_breaks() {
        let c = OpinionCensus::from_tallies([(3, 50), (1, 200), (2, 200), (4, 10), (5, 0)]);
        assert_eq!(c.leader(), Some(1), "support tie breaks to the smaller id");
        assert_eq!(c.runner_up(), Some(2));
        assert_eq!(c.weakest_non_leader(), Some(4), "zero-support entries drop");
        assert_eq!(c.tallies().len(), 4);

        let unanimous = OpinionCensus::from_tallies([(7, 100)]);
        assert_eq!(unanimous.leader(), Some(7));
        assert_eq!(unanimous.runner_up(), None);
        assert_eq!(unanimous.weakest_non_leader(), None);

        let empty = OpinionCensus::default();
        assert_eq!(empty.leader(), None);

        // Duplicate tallies merge (the sequential engine can emit one pair
        // per agent).
        let merged = OpinionCensus::from_tallies([(1, 5), (2, 3), (1, 5)]);
        assert_eq!(merged.tallies(), &[(1, 10), (2, 3)]);
    }

    #[test]
    fn adaptive_strategies_aim_at_the_census() {
        let census = OpinionCensus::from_tallies([(1, 500), (2, 300), (3, 50)]);
        let strat = |strategy| AdaptiveAdversary {
            frac: 0.1,
            strategy,
        };
        assert_eq!(
            strat(AdaptiveStrategy::BoostRunnerUp).forgery(&census),
            Forgery::Opinion(2)
        );
        assert_eq!(
            strat(AdaptiveStrategy::SuppressLeader).forgery(&census),
            Forgery::Opinion(3),
            "suppress-leader props up the weakest rival"
        );
        assert_eq!(
            strat(AdaptiveStrategy::Split).forgery(&census),
            Forgery::Split(1, 2)
        );

        // Degradation as opinions die out.
        let unanimous = OpinionCensus::from_tallies([(2, 100)]);
        assert_eq!(
            strat(AdaptiveStrategy::BoostRunnerUp).forgery(&unanimous),
            Forgery::Random
        );
        assert_eq!(
            strat(AdaptiveStrategy::Split).forgery(&unanimous),
            Forgery::Opinion(2)
        );
        let empty = OpinionCensus::default();
        for s in [
            AdaptiveStrategy::BoostRunnerUp,
            AdaptiveStrategy::SuppressLeader,
            AdaptiveStrategy::Split,
        ] {
            assert_eq!(strat(s).forgery(&empty), Forgery::Random);
        }

        let a = strat(AdaptiveStrategy::Split);
        assert!(a.adaptive());
        assert_eq!(a.forged_opinion(), None);
        assert_eq!(a.describe(), "adaptive:0.1:split");
    }

    #[test]
    fn forgeries_resolve_to_table_states_with_graceful_degradation() {
        assert_eq!(
            resolve_forgery(&T3, Forgery::Random),
            Some(LieTarget::Random)
        );
        assert_eq!(
            resolve_forgery(&T3, Forgery::Opinion(2)),
            Some(LieTarget::Fixed(2))
        );
        assert_eq!(resolve_forgery(&T3, Forgery::Opinion(9)), None);
        assert_eq!(
            resolve_forgery(&T3, Forgery::Split(1, 2)),
            Some(LieTarget::Pair(1, 2))
        );
        assert_eq!(
            resolve_forgery(&T3, Forgery::Split(1, 9)),
            Some(LieTarget::Fixed(1)),
            "half-unmappable split degrades to the mappable side"
        );
        assert_eq!(resolve_forgery(&T3, Forgery::Split(8, 9)), None);
    }

    #[test]
    fn plan_schedule_is_sorted_by_time() {
        let plan = FaultPlan::new()
            .with(Churn {
                at: 80.0,
                frac: 0.1,
            })
            .with(Corrupt {
                at: 20.0,
                frac: 0.2,
            });
        let schedule = plan.schedule();
        assert_eq!(plan.len(), 2);
        assert_eq!(schedule[0].0, 20.0);
        assert_eq!(schedule[1].0, 80.0);
        assert_eq!(schedule[0].1.replacement, Replacement::Random);
        assert_eq!(schedule[1].1.replacement, Replacement::Rejoin);
    }

    #[test]
    fn strike_counts_conserves_population() {
        let mut rng = SimRng::seed_from_u64(7);
        let initial = [0u64, 700, 300];
        for replacement in [
            Replacement::Random,
            Replacement::Opinion(2),
            Replacement::Rejoin,
        ] {
            let mut counts = vec![0u64, 900, 100];
            strike_counts(
                &T3,
                &mut counts,
                &initial,
                &FaultAction {
                    frac: 0.3,
                    replacement,
                },
                &mut rng,
            );
            assert_eq!(
                counts.iter().sum::<u64>(),
                1000,
                "{replacement:?} must conserve n"
            );
        }
    }

    #[test]
    fn opinion_strike_moves_mass_to_the_target_state() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut counts = vec![0u64, 1000, 0];
        strike_counts(
            &T3,
            &mut counts,
            &[0, 1000, 0],
            &FaultAction {
                frac: 0.5,
                replacement: Replacement::Opinion(2),
            },
            &mut rng,
        );
        assert!(counts[2] > 300, "injected mass: {counts:?}");
        assert_eq!(counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn unsupported_opinion_strike_is_a_noop() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut counts = vec![10u64, 500, 490];
        strike_counts(
            &T3,
            &mut counts,
            &[10, 500, 490],
            &FaultAction {
                frac: 0.4,
                replacement: Replacement::Opinion(9),
            },
            &mut rng,
        );
        assert_eq!(counts, vec![10, 500, 490]);
    }

    #[test]
    fn scheduler_weights_and_assortativity() {
        let starve = StarveScheduler {
            opinion: 2,
            weight: 0.25,
        };
        assert_eq!(starve.opinion_weight(Some(2)), 0.25);
        assert_eq!(starve.opinion_weight(Some(1)), 1.0);
        assert_eq!(starve.opinion_weight(None), 1.0);
        assert_eq!(starve.assortativity(), 0.0);

        let pair = PairBiasScheduler { assort: 0.4 };
        assert_eq!(pair.assortativity(), 0.4);
        assert_eq!(pair.opinion_weight(Some(1)), 1.0);
        assert_eq!(UniformScheduler.opinion_weight(None), 1.0);
    }

    #[test]
    fn fault_record_survival_semantics() {
        let r = FaultRecord {
            at: 50.0,
            hook: "corrupt@50:0.1".into(),
            output_before: Some(1),
            output_after: Some(1),
            recovery_time: 4.2,
        };
        assert!(r.recovered() && r.winner_survived());
        let flipped = FaultRecord {
            output_after: Some(2),
            ..r.clone()
        };
        assert!(flipped.recovered() && !flipped.winner_survived());
        let never = FaultRecord {
            output_after: None,
            recovery_time: f64::NAN,
            ..r.clone()
        };
        assert!(!never.recovered() && !never.winner_survived());
        let unconverged_before = FaultRecord {
            output_before: None,
            ..r
        };
        assert!(!unconverged_before.winner_survived());
    }
}
