//! Run a [`TableProtocol`] on the sequential per-agent engine.
//!
//! The batched configuration-space engines are the fast path for table
//! protocols, but two situations still need the sequential scheduler:
//!
//! * **A/B validation** — the `--engine seq` flag of the experiment driver
//!   re-runs every table-protocol arm per-agent so batched statistics can
//!   be cross-checked on identical inputs;
//! * **census collection** — distinct-state tracking
//!   ([`crate::Simulation::run_with_census`]) needs per-agent states.
//!
//! [`SeqTable`] wraps any table so the engine-erased experiment arms can
//! switch engines uniformly instead of keeping a hand-written per-agent
//! twin of each table protocol.

use rand::Rng;

use crate::batch::TableProtocol;
use crate::fault::Replacement;
use crate::protocol::{Protocol, SimRng};

/// Adapter running a [`TableProtocol`] under [`crate::Simulation`].
///
/// Agent states are the table's state indices. The convergence predicate
/// tallies the configuration and defers to [`TableProtocol::output`], so
/// the decision matches the batched engines exactly.
#[derive(Debug, Clone)]
pub struct SeqTable<P: TableProtocol> {
    table: P,
}

impl<P: TableProtocol> SeqTable<P> {
    /// Wrap `table` for the sequential engine.
    pub fn new(table: P) -> Self {
        Self { table }
    }

    /// The wrapped table.
    pub fn table(&self) -> &P {
        &self.table
    }

    /// Expand a configuration (`counts[s]` agents in state `s`) into the
    /// per-agent state vector the sequential engine needs. Agents of equal
    /// state are contiguous; the uniform scheduler makes ordering
    /// irrelevant.
    pub fn initial_states(counts: &[u64]) -> Vec<u32> {
        let mut states = Vec::with_capacity(counts.iter().sum::<u64>() as usize);
        for (s, &c) in counts.iter().enumerate() {
            states.extend(std::iter::repeat_n(s as u32, c as usize));
        }
        states
    }
}

impl<P: TableProtocol> Protocol for SeqTable<P> {
    type State = u32;

    #[inline]
    fn interact(&mut self, _t: u64, a: &mut u32, b: &mut u32, rng: &mut SimRng) {
        let (x, y) = self.table.delta(*a as usize, *b as usize, rng);
        *a = x as u32;
        *b = y as u32;
    }

    fn converged(&self, states: &[u32]) -> Option<u32> {
        let mut counts = vec![0u64; self.table.states()];
        for &s in states {
            counts[s as usize] += 1;
        }
        self.table.output(&counts)
    }

    fn encode(&self, state: &u32) -> u64 {
        u64::from(*state)
    }

    fn fault_state(&self, replacement: &Replacement, rng: &mut SimRng) -> Option<u32> {
        match *replacement {
            Replacement::Random => Some(rng.gen_range(0..self.table.states()) as u32),
            Replacement::Opinion(o) => self.table.opinion_state(o).map(|s| s as u32),
            // The engine restores the victim's initial state itself.
            Replacement::Rejoin => None,
        }
    }

    fn opinion_of(&self, state: &u32) -> Option<u32> {
        self.table.opinion(*state as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RunOptions, RunStatus, Simulation};

    /// One-way epidemic as a table: state 1 infects state 0.
    struct EpidemicTable;
    impl TableProtocol for EpidemicTable {
        fn states(&self) -> usize {
            2
        }
        fn is_deterministic(&self) -> bool {
            true
        }
        fn delta(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
            if a == 1 || b == 1 {
                (1, 1)
            } else {
                (0, 0)
            }
        }
        fn output(&self, counts: &[u64]) -> Option<u32> {
            (counts[0] == 0).then_some(1)
        }
    }

    #[test]
    fn initial_states_expand_the_configuration() {
        let states = SeqTable::<EpidemicTable>::initial_states(&[2, 3]);
        assert_eq!(states, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn epidemic_completes_under_the_adapter() {
        let mut states = SeqTable::<EpidemicTable>::initial_states(&[1023, 1]);
        states.sort_unstable(); // irrelevant under the uniform scheduler
        let mut sim = Simulation::new(SeqTable::new(EpidemicTable), states, 9);
        let r = sim.run(&RunOptions::with_parallel_time_budget(1024, 200.0));
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(r.output, Some(1));
    }

    #[test]
    fn census_sees_exactly_the_occupied_table_states() {
        let states = SeqTable::<EpidemicTable>::initial_states(&[100, 1]);
        let mut sim = Simulation::new(SeqTable::new(EpidemicTable), states, 3);
        let mut census = crate::Census::new();
        let r = sim.run_with_census(
            &RunOptions::with_parallel_time_budget(101, 500.0),
            &mut census,
        );
        assert_eq!(r.status, RunStatus::Converged);
        assert_eq!(census.len(), 2);
    }
}
