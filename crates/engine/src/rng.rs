//! Deterministic seed derivation.
//!
//! Experiments are reproducible from one base seed: trial `i` of experiment
//! `e` uses `derive(derive(BASE, e), i)`. The mixer is SplitMix64, whose
//! output is equidistributed and passes through a full avalanche, so derived
//! streams are statistically independent for simulation purposes.

/// SplitMix64 finalizer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derive a child seed from a base seed and a stream index.
#[inline]
pub fn derive(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive(1, 2), derive(1, 2));
    }

    #[test]
    fn streams_differ() {
        let base = 42;
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(derive(base, i)), "collision at stream {i}");
        }
    }

    #[test]
    fn bases_differ() {
        assert_ne!(derive(1, 0), derive(2, 0));
    }

    #[test]
    fn splitmix_avalanche_flips_many_bits() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert!((a ^ b).count_ones() > 16);
    }
}
