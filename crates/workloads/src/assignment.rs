//! Per-agent opinion assignments.

use crate::counts::Counts;

/// One opinion per agent, expanded from a [`Counts`] vector.
///
/// Opinion identifiers are `1..=k`, matching the paper's numbering (the
/// ordered `SimpleAlgorithm` uses opinion 1 as the first defender and
/// opinion `i + 1` as the challenger of tournament `i`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpinionAssignment {
    counts: Counts,
    opinions: Vec<u16>,
}

impl OpinionAssignment {
    /// Expand a support vector into per-agent opinions.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds `u16::MAX`.
    pub fn from_counts(counts: Counts) -> Self {
        assert!(counts.k() <= usize::from(u16::MAX), "opinion ids are u16");
        let mut opinions = Vec::with_capacity(counts.n());
        for (idx, &support) in counts.supports().iter().enumerate() {
            let op = (idx + 1) as u16;
            opinions.extend(std::iter::repeat_n(op, support));
        }
        Self { counts, opinions }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.opinions.len()
    }

    /// Number of opinions.
    pub fn k(&self) -> usize {
        self.counts.k()
    }

    /// The per-agent opinions (`1..=k`).
    pub fn opinions(&self) -> &[u16] {
        &self.opinions
    }

    /// The underlying support vector.
    pub fn counts(&self) -> &Counts {
        &self.counts
    }

    /// The unique plurality opinion, as a `u32` protocol output.
    pub fn plurality(&self) -> u32 {
        u32::from(self.counts.plurality())
    }

    /// Support of the plurality opinion.
    pub fn x_max(&self) -> usize {
        self.counts.x_max()
    }

    /// Initial per-agent opinion states for protocols whose
    /// `Protocol::State` is built from an opinion id (convenience for the
    /// facade example; protocol crates provide their own richer
    /// constructors).
    pub fn initial_states(&self) -> Vec<u16> {
        self.opinions.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_matches_counts() {
        let counts = Counts::from_supports(vec![3, 2, 1]);
        let a = counts.assignment();
        assert_eq!(a.n(), 6);
        assert_eq!(a.opinions(), &[1, 1, 1, 2, 2, 3]);
        assert_eq!(a.plurality(), 1);
    }

    #[test]
    fn per_opinion_tallies_roundtrip() {
        let counts = Counts::bias_one(997, 9);
        let a = counts.assignment();
        let mut tally = vec![0usize; a.k()];
        for &op in a.opinions() {
            tally[usize::from(op) - 1] += 1;
        }
        assert_eq!(tally, a.counts().supports());
    }
}
