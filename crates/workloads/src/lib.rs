//! Opinion workloads: initial opinion distributions for plurality consensus.
//!
//! The paper's input is a vector `x = (x_i)` of opinion supports with
//! `Σ x_i = n`. The interesting regimes are:
//!
//! * **bias 1** — the plurality leads the runner-up by a single agent
//!   (the *exact* plurality regime the paper targets),
//! * **one large, many small** — `x_max = n^(1/2+ε)` with many insignificant
//!   opinions (the regime where `ImprovedAlgorithm`'s pruning shines),
//! * **Zipf / geometric** — natural heavy-tailed opinion landscapes.
//!
//! A [`Counts`] value is the distribution; [`OpinionAssignment`] expands it
//! into one opinion per agent. Opinions are numbered `1..=k` as in the paper.
//! [`Workload`] names these constructors declaratively — scenario grids
//! store workloads, and manifests record which input family produced each
//! row.

mod assignment;
mod counts;
mod workload;

pub use assignment::OpinionAssignment;
pub use counts::Counts;
pub use workload::Workload;
