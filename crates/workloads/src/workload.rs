//! Named workload constructors for the scenario DSL.
//!
//! A [`Workload`] is a declarative description of an initial opinion
//! distribution — the value a scenario grid stores instead of a
//! materialised [`Counts`]. It names one of the support-shape constructors
//! of [`Counts`] together with its parameters, so experiment manifests can
//! record *which* input family a row came from and new scenarios can sweep
//! input shapes with one-line grid entries.

use crate::Counts;

/// A named initial opinion distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// [`Counts::bias_one`]: as equal as possible, plurality leads by the
    /// minimum feasible bias.
    BiasOne {
        /// Population size.
        n: usize,
        /// Number of opinions.
        k: usize,
    },
    /// [`Counts::adversarial_bias`]: top two opinions separated by exactly
    /// `bias`, the rest well below.
    AdversarialBias {
        /// Population size.
        n: usize,
        /// Number of opinions.
        k: usize,
        /// Gap between the top two opinions.
        bias: usize,
    },
    /// [`Counts::one_large`]: a dominant opinion of support `x_max`, the
    /// rest sharing the remainder evenly (the Theorem 2 regime).
    OneLarge {
        /// Population size.
        n: usize,
        /// Number of opinions.
        k: usize,
        /// Support of the dominant opinion.
        x_max: usize,
    },
    /// [`Counts::zipf`]: supports `∝ i^(−s)`.
    Zipf {
        /// Population size.
        n: usize,
        /// Number of opinions.
        k: usize,
        /// Zipf exponent.
        s: f64,
    },
    /// [`Counts::geometric`]: supports `∝ ratio^i`.
    Geometric {
        /// Population size.
        n: usize,
        /// Number of opinions.
        k: usize,
        /// Decay ratio in `(0, 1)`.
        ratio: f64,
    },
    /// Explicit per-opinion supports (`supports[i]` agents hold opinion
    /// `i + 1`), for grids that compute shapes inline.
    Explicit {
        /// Supports, indexed by opinion − 1.
        supports: Vec<usize>,
    },
}

impl Workload {
    /// Materialise the support vector.
    ///
    /// # Panics
    ///
    /// Propagates the constructor panics of [`Counts`] for infeasible
    /// parameters.
    pub fn counts(&self) -> Counts {
        match self {
            Workload::BiasOne { n, k } => Counts::bias_one(*n, *k),
            Workload::AdversarialBias { n, k, bias } => Counts::adversarial_bias(*n, *k, *bias),
            Workload::OneLarge { n, k, x_max } => Counts::one_large(*n, *k, *x_max),
            Workload::Zipf { n, k, s } => Counts::zipf(*n, *k, *s),
            Workload::Geometric { n, k, ratio } => Counts::geometric(*n, *k, *ratio),
            Workload::Explicit { supports } => Counts::from_supports(supports.clone()),
        }
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        match self {
            Workload::BiasOne { n, .. }
            | Workload::AdversarialBias { n, .. }
            | Workload::OneLarge { n, .. }
            | Workload::Zipf { n, .. }
            | Workload::Geometric { n, .. } => *n,
            Workload::Explicit { supports } => supports.iter().sum(),
        }
    }

    /// Number of opinions `k`.
    pub fn k(&self) -> usize {
        match self {
            Workload::BiasOne { k, .. }
            | Workload::AdversarialBias { k, .. }
            | Workload::OneLarge { k, .. }
            | Workload::Zipf { k, .. }
            | Workload::Geometric { k, .. } => *k,
            Workload::Explicit { supports } => supports.len(),
        }
    }

    /// Short family name ("bias_one", "zipf", …) for table rows and
    /// manifests.
    pub fn family(&self) -> &'static str {
        match self {
            Workload::BiasOne { .. } => "bias_one",
            Workload::AdversarialBias { .. } => "adversarial",
            Workload::OneLarge { .. } => "one_large",
            Workload::Zipf { .. } => "zipf",
            Workload::Geometric { .. } => "geometric",
            Workload::Explicit { .. } => "explicit",
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Workload::BiasOne { n, k } => write!(f, "bias_one(n={n},k={k})"),
            Workload::AdversarialBias { n, k, bias } => {
                write!(f, "adversarial(n={n},k={k},bias={bias})")
            }
            Workload::OneLarge { n, k, x_max } => {
                write!(f, "one_large(n={n},k={k},x_max={x_max})")
            }
            Workload::Zipf { n, k, s } => write!(f, "zipf(n={n},k={k},s={s})"),
            Workload::Geometric { n, k, ratio } => {
                write!(f, "geometric(n={n},k={k},ratio={ratio})")
            }
            Workload::Explicit { supports } => write!(f, "explicit(k={})", supports.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_workloads_materialise_and_report_dimensions() {
        let cases = [
            Workload::BiasOne { n: 600, k: 3 },
            Workload::AdversarialBias {
                n: 600,
                k: 3,
                bias: 10,
            },
            Workload::OneLarge {
                n: 600,
                k: 5,
                x_max: 200,
            },
            Workload::Zipf {
                n: 600,
                k: 6,
                s: 1.0,
            },
            Workload::Geometric {
                n: 600,
                k: 6,
                ratio: 0.5,
            },
            Workload::Explicit {
                supports: vec![300, 200, 100],
            },
        ];
        for w in cases {
            let c = w.counts();
            assert_eq!(c.n(), w.n(), "{w}");
            assert_eq!(c.k(), w.k(), "{w}");
            assert!(!w.family().is_empty());
        }
    }

    #[test]
    fn display_names_the_family() {
        let w = Workload::Zipf {
            n: 100,
            k: 4,
            s: 2.0,
        };
        assert_eq!(w.to_string(), "zipf(n=100,k=4,s=2)");
        assert_eq!(w.family(), "zipf");
    }
}
