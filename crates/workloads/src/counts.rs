//! Opinion support vectors.

use crate::assignment::OpinionAssignment;

/// An opinion support vector `(x_1, …, x_k)` with `Σ x_i = n`.
///
/// Invariants enforced at construction: every support is ≥ 1 (the paper's
/// opinions all start populated), the plurality (largest support) is unique,
/// and opinion identifiers are `1..=k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counts {
    supports: Vec<usize>,
}

impl Counts {
    /// Build from explicit supports (`supports[i]` is the support of opinion
    /// `i + 1`).
    ///
    /// # Panics
    ///
    /// Panics if any support is zero or the maximum is not unique.
    pub fn from_supports(supports: Vec<usize>) -> Self {
        assert!(!supports.is_empty(), "need at least one opinion");
        assert!(
            supports.iter().all(|&x| x >= 1),
            "all opinions must start supported"
        );
        let max = *supports.iter().max().expect("non-empty");
        let max_count = supports.iter().filter(|&&x| x == max).count();
        assert_eq!(max_count, 1, "plurality opinion must be unique");
        Self { supports }
    }

    /// As equal as possible with the plurality (opinion 1) leading the
    /// runner-up by the *minimum feasible* bias: exactly 1, except for
    /// `k = 2` with even `n`, where parity forces a bias of 2 (the two
    /// supports must differ by an even number).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2·k` (no room for a strict plurality).
    pub fn bias_one(n: usize, k: usize) -> Self {
        assert!(k >= 1 && n >= 2 * k, "need n >= 2k for a bias-1 split");
        if k == 1 {
            return Self::from_supports(vec![n]);
        }
        let base = n / k;
        let rem = n % k;
        let mut supports = vec![base; k];
        for s in supports.iter_mut().take(rem) {
            *s += 1;
        }
        match rem {
            // All equal: promote opinion 1, demote opinion k. For k ≥ 3 the
            // runner-up stays at `base` (bias 1); for k = 2 this yields the
            // parity-minimal bias 2.
            0 => {
                supports[0] += 1;
                supports[k - 1] -= 1;
            }
            // Opinion 1 already leads everyone by exactly 1.
            1 => {}
            // Opinions 1..rem tie at base+1: promote opinion 1 by demoting
            // the *last* (base-valued) bucket, so the runner-up stays at
            // base+1 and the bias is exactly 1. (rem ≥ 2 implies k ≥ 3.)
            _ => {
                supports[0] += 1;
                supports[k - 1] -= 1;
            }
        }
        let c = Self::from_supports(supports);
        debug_assert!(
            c.bias() == 1 || (k == 2 && n.is_multiple_of(2) && c.bias() == 2),
            "bias_one produced bias {} for (n={n}, k={k})",
            c.bias()
        );
        c
    }

    /// Top-two opinions separated by exactly `bias`; the remaining `k − 2`
    /// opinions share what is left as evenly as possible (strictly below the
    /// runner-up).
    ///
    /// # Panics
    ///
    /// Panics if the requested shape is infeasible.
    pub fn adversarial_bias(n: usize, k: usize, bias: usize) -> Self {
        assert!(k >= 2, "adversarial_bias needs k >= 2");
        assert!(bias >= 1);
        // Small opinions get `small`, the top two `second` and
        // `second + bias`.
        let small = n / (2 * k);
        let small_total = small * (k.saturating_sub(2));
        let rest = n - small_total;
        assert!(rest > bias, "population too small for requested bias");
        let second = (rest - bias) / 2;
        let top = rest - second;
        assert_eq!(top - second, bias + (rest - bias) % 2);
        assert!(
            second > small,
            "small opinions must stay below the runner-up"
        );
        let mut supports = vec![small; k];
        supports[0] = top;
        supports[1] = second;
        Self::from_supports(supports)
    }

    /// One large opinion of support `x_max`; the other `k − 1` opinions share
    /// the remainder as evenly as possible. This is the Theorem 2 regime.
    ///
    /// # Panics
    ///
    /// Panics if `x_max` does not strictly dominate the others or some
    /// opinion would be empty.
    pub fn one_large(n: usize, k: usize, x_max: usize) -> Self {
        assert!(k >= 2 && x_max < n);
        let rest = n - x_max;
        let others = k - 1;
        let base = rest / others;
        let rem = rest % others;
        let mut supports = Vec::with_capacity(k);
        supports.push(x_max);
        for i in 0..others {
            supports.push(base + usize::from(i < rem));
        }
        assert!(
            x_max > base + usize::from(rem > 0),
            "x_max must dominate strictly"
        );
        Self::from_supports(supports)
    }

    /// Zipf-like distribution: `x_i ∝ i^(−s)`, rounded, with leftovers pushed
    /// to opinion 1 so the plurality is strictly unique.
    pub fn zipf(n: usize, k: usize, s: f64) -> Self {
        assert!(k >= 1 && n >= 2 * k);
        let weights: Vec<f64> = (1..=k).map(|i| (i as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut supports: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * n as f64).floor().max(1.0) as usize)
            .collect();
        let assigned: usize = supports.iter().sum();
        if assigned > n {
            // Trim from the head (largest first) while keeping ≥ 1.
            let mut excess = assigned - n;
            'outer: loop {
                for s in supports.iter_mut() {
                    if excess == 0 {
                        break 'outer;
                    }
                    if *s > 1 {
                        *s -= 1;
                        excess -= 1;
                    }
                }
            }
        } else {
            supports[0] += n - assigned;
        }
        // Guarantee a strict plurality at opinion 1.
        if k >= 2 && supports[0] <= supports[1] {
            let needed = supports[1] - supports[0] + 1;
            let mut moved = 0;
            for s in supports.iter_mut().skip(1).rev() {
                while moved < needed && *s > 1 {
                    *s -= 1;
                    moved += 1;
                }
            }
            supports[0] += moved;
        }
        Self::from_supports(supports)
    }

    /// Geometric decay: `x_i ∝ ratio^i` for `ratio < 1`, normalised and
    /// fixed up exactly like [`zipf`](Self::zipf).
    pub fn geometric(n: usize, k: usize, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio < 1.0);
        assert!(k >= 1 && n >= 2 * k);
        let weights: Vec<f64> = (0..k).map(|i| ratio.powi(i as i32)).collect();
        let total: f64 = weights.iter().sum();
        let mut supports: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * n as f64).floor().max(1.0) as usize)
            .collect();
        let assigned: usize = supports.iter().sum();
        if assigned > n {
            let mut excess = assigned - n;
            for s in supports.iter_mut().rev() {
                let take = excess.min(s.saturating_sub(1));
                *s -= take;
                excess -= take;
                if excess == 0 {
                    break;
                }
            }
            assert_eq!(excess, 0, "population too small for geometric shape");
        } else {
            supports[0] += n - assigned;
        }
        if k >= 2 && supports[0] <= supports[1] {
            supports[0] += 1;
            let last = supports.len() - 1;
            supports[last] -= 1;
        }
        Self::from_supports(supports)
    }

    /// Number of opinions `k`.
    pub fn k(&self) -> usize {
        self.supports.len()
    }

    /// Population size `n = Σ x_i`.
    pub fn n(&self) -> usize {
        self.supports.iter().sum()
    }

    /// Support of opinion `op` (1-based).
    pub fn support(&self, op: u16) -> usize {
        self.supports[usize::from(op) - 1]
    }

    /// All supports, indexed by opinion − 1.
    pub fn supports(&self) -> &[usize] {
        &self.supports
    }

    /// The (unique) plurality opinion.
    pub fn plurality(&self) -> u16 {
        let (idx, _) = self
            .supports
            .iter()
            .enumerate()
            .max_by_key(|&(_, x)| x)
            .expect("non-empty");
        (idx + 1) as u16
    }

    /// Support of the plurality opinion (`x_max`).
    pub fn x_max(&self) -> usize {
        *self.supports.iter().max().expect("non-empty")
    }

    /// Gap between the plurality and the runner-up. ≥ 1 by construction.
    pub fn bias(&self) -> usize {
        if self.supports.len() == 1 {
            return self.supports[0];
        }
        let mut sorted = self.supports.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted[0] - sorted[1]
    }

    /// Expand into one opinion per agent (agents of the same opinion are
    /// contiguous; the uniform scheduler makes ordering irrelevant).
    pub fn assignment(&self) -> OpinionAssignment {
        OpinionAssignment::from_counts(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_one_has_bias_one_across_shapes() {
        for (n, k) in [
            (41, 2),
            (41, 3),
            (100, 7),
            (1000, 13),
            (96, 4),
            (97, 4),
            (98, 4),
        ] {
            let c = Counts::bias_one(n, k);
            assert_eq!(c.n(), n, "n mismatch at ({n},{k})");
            assert_eq!(c.k(), k);
            assert_eq!(c.bias(), 1, "bias at ({n},{k}): {:?}", c.supports());
            assert_eq!(c.plurality(), 1);
        }
    }

    #[test]
    fn bias_one_parity_exception_for_two_opinions() {
        // Two opinions with an even population cannot differ by 1.
        let c = Counts::bias_one(40, 2);
        assert_eq!(c.n(), 40);
        assert_eq!(c.bias(), 2);
        assert_eq!(c.plurality(), 1);
    }

    #[test]
    fn adversarial_bias_hits_requested_gap() {
        let c = Counts::adversarial_bias(1000, 5, 4);
        assert_eq!(c.n(), 1000);
        assert!(c.bias() >= 4 && c.bias() <= 5);
        assert_eq!(c.plurality(), 1);
    }

    #[test]
    fn one_large_dominates() {
        let c = Counts::one_large(10_000, 50, 400);
        assert_eq!(c.n(), 10_000);
        assert_eq!(c.x_max(), 400);
        assert_eq!(c.plurality(), 1);
        // Others share ~9600 over 49 opinions ≈ 196.
        assert!(c.support(2) < 400);
    }

    #[test]
    fn zipf_sums_to_n_with_unique_plurality() {
        for s in [0.5, 1.0, 2.0] {
            let c = Counts::zipf(5000, 20, s);
            assert_eq!(c.n(), 5000);
            assert_eq!(c.plurality(), 1);
            assert!(c.bias() >= 1);
        }
    }

    #[test]
    fn geometric_sums_to_n() {
        let c = Counts::geometric(2000, 10, 0.5);
        assert_eq!(c.n(), 2000);
        assert_eq!(c.plurality(), 1);
        assert!(c.support(1) > c.support(10));
    }

    #[test]
    #[should_panic]
    fn duplicate_plurality_rejected() {
        let _ = Counts::from_supports(vec![5, 5, 2]);
    }

    #[test]
    #[should_panic]
    fn empty_opinion_rejected() {
        let _ = Counts::from_supports(vec![5, 0, 2]);
    }
}
