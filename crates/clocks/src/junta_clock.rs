//! The junta-driven phase clock of Berenbrink et al. \[11\].
//!
//! Every agent carries a counter `p` (initially 0). When a *junta* agent
//! initiates an interaction it sets `p ← max(p, p_partner + 1)`; a non-junta
//! initiator only pulls the max (`p ← max(p, p_partner)`). The counter's
//! "hours" are blocks of `m` consecutive values: agent `u` *passes through
//! zero for the i-th time* when `⌊p/m⌋ ≥ i` first holds. Hour boundaries are
//! Θ(n log n)-interaction spaced and population-coherent (Lemma 6).
//!
//! The simulation stores `p` as a plain `u64`; a real deployment stores it
//! modulo a constant multiple of `m` with circular comparison, which is how
//! the census accounts it (see [`JuntaClock::encode_counter`]).

use pp_engine::{Protocol, SimRng};

use crate::junta::{FormJunta, JuntaState};

/// The clock component: hour length `m` plus the max-propagation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JuntaClock {
    hour_len: u32,
}

impl JuntaClock {
    /// A clock whose hours are `hour_len` counter units long.
    ///
    /// # Panics
    ///
    /// Panics if `hour_len` is 0.
    pub fn new(hour_len: u32) -> Self {
        assert!(hour_len >= 1);
        Self { hour_len }
    }

    /// Hour length `m`.
    pub fn hour_len(&self) -> u32 {
        self.hour_len
    }

    /// The hour containing counter value `p`.
    #[inline]
    pub fn hour(&self, p: u64) -> u64 {
        p / u64::from(self.hour_len)
    }

    /// Initiator-side clock step; returns how many hour boundaries the
    /// initiator crossed (0 in the common case).
    #[inline]
    pub fn interact(&self, a_is_junta: bool, a: &mut u64, b: u64) -> u64 {
        let target = if a_is_junta {
            (*a).max(b + 1)
        } else {
            (*a).max(b)
        };
        let crossed = self.hour(target) - self.hour(*a);
        *a = target;
        crossed
    }

    /// Census encoding of a counter: a real implementation keeps `p` modulo
    /// `64·m` (with circular max), so distinct simulated values that agree
    /// modulo that window are the same machine state.
    pub fn encode_counter(&self, p: u64) -> u64 {
        p % (64 * u64::from(self.hour_len))
    }
}

/// Agent state of the standalone combined protocol: the junta race plus the
/// clock counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JuntaClockAgent {
    /// Junta-election state (the race runs concurrently with the clock; the
    /// counter stays near 0 until the first junta member exists).
    pub junta: JuntaState,
    /// Clock counter `p`.
    pub p: u64,
}

/// Standalone protocol: junta election + clock on a full population,
/// recording the `s(i)` milestones (first agent to reach hour `i`).
#[derive(Debug, Clone)]
pub struct JuntaClockRun {
    election: FormJunta,
    clock: JuntaClock,
    /// `first_hour_at[i]` = interaction at which the first agent reached
    /// hour `i + 1`.
    pub first_hour_at: Vec<u64>,
}

impl JuntaClockRun {
    /// A standalone run over `n` agents.
    pub fn new(n: usize, hour_len: u32) -> (Self, Vec<JuntaClockAgent>) {
        (
            Self {
                election: FormJunta::for_population(n),
                clock: JuntaClock::new(hour_len),
                first_hour_at: Vec::new(),
            },
            vec![JuntaClockAgent::default(); n],
        )
    }

    /// The clock component.
    pub fn clock(&self) -> &JuntaClock {
        &self.clock
    }

    /// The election component.
    pub fn election(&self) -> &FormJunta {
        &self.election
    }
}

impl Protocol for JuntaClockRun {
    type State = JuntaClockAgent;

    fn interact(
        &mut self,
        t: u64,
        a: &mut JuntaClockAgent,
        b: &mut JuntaClockAgent,
        _rng: &mut SimRng,
    ) {
        self.election.interact(&mut a.junta, &b.junta);
        let is_junta = self.election.is_junta(&a.junta);
        let before_hour = self.clock.hour(a.p);
        self.clock.interact(is_junta, &mut a.p, b.p);
        let after_hour = self.clock.hour(a.p);
        if after_hour > before_hour {
            while (self.first_hour_at.len() as u64) < after_hour {
                self.first_hour_at.push(t);
            }
        }
    }

    fn converged(&self, _states: &[JuntaClockAgent]) -> Option<u32> {
        None
    }

    fn encode(&self, state: &JuntaClockAgent) -> u64 {
        let j = u64::from(state.junta.level) << 1 | u64::from(state.junta.active);
        j << 16 | self.clock.encode_counter(state.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, Simulation};

    #[test]
    fn hours_partition_the_counter() {
        let c = JuntaClock::new(4);
        assert_eq!(c.hour(0), 0);
        assert_eq!(c.hour(3), 0);
        assert_eq!(c.hour(4), 1);
        assert_eq!(c.hour(9), 2);
    }

    #[test]
    fn junta_initiator_pushes_past_partner() {
        let c = JuntaClock::new(4);
        let mut a = 3u64;
        let crossed = c.interact(true, &mut a, 3);
        assert_eq!(a, 4);
        assert_eq!(crossed, 1);
        // Non-junta only pulls the max.
        let mut x = 0u64;
        let crossed = c.interact(false, &mut x, 9);
        assert_eq!(x, 9);
        assert_eq!(crossed, 2);
        // Pulling backwards never happens.
        let mut y = 9u64;
        c.interact(false, &mut y, 2);
        assert_eq!(y, 9);
    }

    #[test]
    fn clock_ticks_and_hours_are_spaced() {
        let n = 10_000;
        let (proto, states) = JuntaClockRun::new(n, 4);
        let mut sim = Simulation::new(proto, states, 41);
        sim.run(&RunOptions::with_parallel_time_budget(n, 800.0));
        let marks = &sim.protocol().first_hour_at;
        assert!(
            marks.len() >= 4,
            "expected several hours, got {}",
            marks.len()
        );
        // Spacing after warm-up should be positive and not wildly irregular.
        let gaps: Vec<f64> = marks.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let tail = &gaps[1..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean > 0.0);
        for g in tail {
            assert!(*g < 6.0 * mean, "hour gap {g} vs mean {mean}");
        }
    }

    #[test]
    fn census_encoding_wraps_counter() {
        let c = JuntaClock::new(4);
        assert_eq!(c.encode_counter(0), c.encode_counter(256));
        assert_ne!(c.encode_counter(0), c.encode_counter(1));
    }
}
