//! Synchronisation substrates for population protocols.
//!
//! The paper's protocols are organised around two very different clocks:
//!
//! * the **leaderless phase clock** of Alistarh–Aspnes–Gelashvili \[1\]
//!   ([`leaderless`]): clock agents run a circular counter where the laggard
//!   of every clock–clock meeting catches up by one; the counter position
//!   determines the current *phase* of the tournament machinery
//!   ([`schedule`]);
//! * the **junta-driven phase clock** of Berenbrink et al. \[11\]
//!   ([`junta_clock`]): a small junta (elected by the level race in
//!   [`junta`]) pushes a max-propagated counter forward; `ImprovedAlgorithm`
//!   runs one such clock *per opinion* on meaningful (same-opinion)
//!   interactions only ([`subpop`]), so large opinions tick fast and
//!   insignificant ones never tick at all — which is exactly what the
//!   pruning phase exploits.
//!
//! Each module exposes the transition function as an embeddable component
//! plus a standalone [`pp_engine::Protocol`] used to measure its guarantees
//! (experiments X8 and X12).

pub mod junta;
pub mod junta_clock;
pub mod leaderless;
pub mod schedule;
pub mod subpop;

pub use junta::{FormJunta, JuntaState};
pub use junta_clock::JuntaClock;
pub use leaderless::{Advanced, LeaderlessClock};
pub use schedule::PhaseSchedule;
