//! Per-subpopulation junta clocks (the paper's §4 pruning machinery,
//! standalone).
//!
//! Agents carry an opinion; the junta election and the junta clock run on
//! *meaningful* interactions only (both agents share the opinion). A
//! subpopulation of size `x_j` therefore drives its clock at a rate
//! proportional to `x_j²/n²` per interaction, which yields the paper's
//! Lemma 7 spacing `Θ((n²/x_j)·log n)` between hours — large opinions tick
//! fast, and opinions below `√n` (Lemma 9) w.h.p. never elect a junta at
//! all within the relevant horizon. Experiment X8 measures both facts.

use pp_engine::{Protocol, SimRng};

use crate::junta::{FormJunta, JuntaState};
use crate::junta_clock::JuntaClock;

/// Agent state: opinion plus the per-opinion clock machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubpopAgent {
    /// Opinion (1-based).
    pub opinion: u16,
    /// Junta-race state within the agent's subpopulation.
    pub junta: JuntaState,
    /// Junta-clock counter within the subpopulation.
    pub p: u64,
}

/// Standalone protocol running one junta clock per opinion.
#[derive(Debug, Clone)]
pub struct SubpopClocks {
    election: FormJunta,
    clock: JuntaClock,
    /// `first_hour_at[j][i]` = interaction at which the first agent of
    /// opinion `j + 1` reached hour `i + 1`.
    pub first_hour_at: Vec<Vec<u64>>,
    /// `first_junta_at[j]` = interaction at which subpopulation `j + 1`
    /// elected its first junta member.
    pub first_junta_at: Vec<Option<u64>>,
}

impl SubpopClocks {
    /// Build over per-agent opinions (1-based, `k` distinct). The level cap
    /// follows the paper's §4 setting `⌊log₂log₂ n⌋ − 2` because agents know
    /// only `n`, not their subpopulation size.
    pub fn new(opinions: &[u16], hour_len: u32) -> (Self, Vec<SubpopAgent>) {
        let n = opinions.len();
        let k = usize::from(*opinions.iter().max().expect("non-empty population"));
        let states = opinions
            .iter()
            .map(|&opinion| SubpopAgent {
                opinion,
                junta: JuntaState::new(),
                p: 0,
            })
            .collect();
        (
            Self {
                election: FormJunta::for_subpopulation_of(n),
                clock: JuntaClock::new(hour_len),
                first_hour_at: vec![Vec::new(); k],
                first_junta_at: vec![None; k],
            },
            states,
        )
    }

    /// The election component.
    pub fn election(&self) -> &FormJunta {
        &self.election
    }

    /// The clock component.
    pub fn clock(&self) -> &JuntaClock {
        &self.clock
    }

    /// Hours completed by opinion `op` (1-based) so far.
    pub fn hours_of(&self, op: u16) -> usize {
        self.first_hour_at[usize::from(op) - 1].len()
    }
}

impl Protocol for SubpopClocks {
    type State = SubpopAgent;

    fn interact(&mut self, t: u64, a: &mut SubpopAgent, b: &mut SubpopAgent, _rng: &mut SimRng) {
        if a.opinion != b.opinion {
            return; // not meaningful
        }
        let j = usize::from(a.opinion) - 1;
        let was_junta = self.election.is_junta(&a.junta);
        self.election.interact(&mut a.junta, &b.junta);
        if !was_junta && self.election.is_junta(&a.junta) && self.first_junta_at[j].is_none() {
            self.first_junta_at[j] = Some(t);
        }
        let is_junta = self.election.is_junta(&a.junta);
        let before = self.clock.hour(a.p);
        self.clock.interact(is_junta, &mut a.p, b.p);
        let after = self.clock.hour(a.p);
        if after > before {
            let marks = &mut self.first_hour_at[j];
            while (marks.len() as u64) < after {
                marks.push(t);
            }
        }
    }

    fn converged(&self, _states: &[SubpopAgent]) -> Option<u32> {
        None
    }

    fn encode(&self, state: &SubpopAgent) -> u64 {
        let j = u64::from(state.junta.level) << 1 | u64::from(state.junta.active);
        u64::from(state.opinion) << 24 | j << 16 | self.clock.encode_counter(state.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, Simulation};

    fn opinions_of(counts: &[usize]) -> Vec<u16> {
        let mut v = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            v.extend(std::iter::repeat_n((i + 1) as u16, c));
        }
        v
    }

    #[test]
    fn larger_subpopulations_tick_faster() {
        // Opinion 1: 6000 agents, opinion 2: 1500 agents of n = 7500.
        let opinions = opinions_of(&[6000, 1500]);
        let n = opinions.len();
        let (proto, states) = SubpopClocks::new(&opinions, 4);
        let mut sim = Simulation::new(proto, states, 13);
        sim.run(&RunOptions::with_parallel_time_budget(n, 3000.0));
        let h1 = sim.protocol().hours_of(1);
        let h2 = sim.protocol().hours_of(2);
        assert!(h1 > h2, "large opinion hours {h1} vs small {h2}");
        assert!(
            h1 >= 2,
            "large opinion should tick at least twice, got {h1}"
        );
    }

    #[test]
    fn tiny_subpopulation_never_ticks() {
        // Opinion 2 has 8 agents among 8000: far below √n ≈ 89. Within the
        // horizon where the large opinion completes several hours, the tiny
        // one must not complete a single one (Lemmas 9/10 case 2: its junta
        // election and clock are starved of meaningful interactions). At
        // simulation sizes ℓmax is tiny, so we assert the operative
        // consequence — zero hours — rather than junta non-existence, which
        // is only asymptotic.
        let opinions = opinions_of(&[7992, 8]);
        let n = opinions.len();
        let (proto, states) = SubpopClocks::new(&opinions, 4);
        let mut sim = Simulation::new(proto, states, 99);
        sim.run(&RunOptions::with_parallel_time_budget(n, 2000.0));
        assert!(sim.protocol().hours_of(1) >= 1);
        assert_eq!(sim.protocol().hours_of(2), 0, "tiny opinion ticked");
    }

    #[test]
    fn meaningless_interactions_do_not_move_clocks() {
        let opinions = opinions_of(&[2, 2]);
        let (mut proto, mut states) = SubpopClocks::new(&opinions, 4);
        let mut rng = <pp_engine::SimRng as rand::SeedableRng>::seed_from_u64(1);
        // Cross-opinion interaction: nothing changes.
        let before = states.clone();
        {
            let (a, rest) = states.split_at_mut(1);
            proto.interact(0, &mut a[0], &mut rest[2], &mut rng);
        }
        assert_eq!(states, before);
    }
}
