//! Phase schedules: mapping a circular counter position to a phase index.

/// A cyclic schedule of phases with individual lengths.
///
/// The paper gives all ten tournament phases the same length Θ(log n). We
/// generalise to per-phase lengths `Ψ_p` (still Θ(log n) each, so the total
/// state count is unchanged) because the *match* phase needs a much larger
/// constant than the buffer phases; see `DESIGN.md` §3.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// `ends[p]` is the exclusive end of phase `p`; `ends.last() == period`.
    ends: Vec<u32>,
}

impl PhaseSchedule {
    /// Build from explicit phase lengths.
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty or any length is zero.
    pub fn from_lengths(lengths: &[u32]) -> Self {
        assert!(!lengths.is_empty(), "schedule needs at least one phase");
        assert!(
            lengths.iter().all(|&l| l > 0),
            "phase lengths must be positive"
        );
        let mut ends = Vec::with_capacity(lengths.len());
        let mut acc = 0u32;
        for &l in lengths {
            acc = acc.checked_add(l).expect("schedule period overflows u32");
            ends.push(acc);
        }
        Self { ends }
    }

    /// A uniform schedule of `phases` phases of `len` counter units each
    /// (the paper's original layout).
    pub fn uniform(phases: usize, len: u32) -> Self {
        Self::from_lengths(&vec![len; phases])
    }

    /// Total counter period (`Σ Ψ_p`).
    pub fn period(&self) -> u32 {
        *self.ends.last().expect("non-empty")
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.ends.len()
    }

    /// The phase containing counter position `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g >= period()`.
    pub fn phase_of(&self, g: u32) -> u8 {
        assert!(
            g < self.period(),
            "counter {g} outside period {}",
            self.period()
        );
        match self.ends.binary_search(&g) {
            // `g` equals the exclusive end of phase `i` → phase `i + 1`.
            Ok(i) => (i + 1) as u8,
            Err(i) => i as u8,
        }
    }

    /// Length of phase `p`.
    pub fn len_of(&self, p: u8) -> u32 {
        let p = usize::from(p);
        let start = if p == 0 { 0 } else { self.ends[p - 1] };
        self.ends[p] - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout() {
        let s = PhaseSchedule::uniform(10, 7);
        assert_eq!(s.period(), 70);
        assert_eq!(s.phases(), 10);
        assert_eq!(s.phase_of(0), 0);
        assert_eq!(s.phase_of(6), 0);
        assert_eq!(s.phase_of(7), 1);
        assert_eq!(s.phase_of(69), 9);
        assert_eq!(s.len_of(3), 7);
    }

    #[test]
    fn ragged_layout() {
        let s = PhaseSchedule::from_lengths(&[2, 5, 1]);
        assert_eq!(s.period(), 8);
        let phases: Vec<u8> = (0..8).map(|g| s.phase_of(g)).collect();
        assert_eq!(phases, vec![0, 0, 1, 1, 1, 1, 1, 2]);
        assert_eq!(s.len_of(0), 2);
        assert_eq!(s.len_of(1), 5);
        assert_eq!(s.len_of(2), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_period_counter_panics() {
        let s = PhaseSchedule::uniform(2, 3);
        let _ = s.phase_of(6);
    }

    #[test]
    #[should_panic]
    fn zero_length_phase_rejected() {
        let _ = PhaseSchedule::from_lengths(&[3, 0]);
    }
}
