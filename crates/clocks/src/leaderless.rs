//! The leaderless phase clock of Alistarh–Aspnes–Gelashvili \[1\].
//!
//! Clock agents each hold a counter modulo the period Ψ. When two clock
//! agents interact, the one whose counter is *circularly behind* increments
//! it; ties advance the initiator. The counter values self-organise into a
//! tight travelling wave, so "the counter wrapped past zero" is a
//! population-wide event that is Θ(log n)-concentrated in time — precisely
//! what Algorithm 1 uses to advance the tournament `phase`.

use pp_engine::{Protocol, SimRng};

/// Which participant advanced, and from/to which counter value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advanced {
    /// The initiator's counter moved `from → to`.
    Initiator {
        /// Counter before the advance.
        from: u32,
        /// Counter after the advance (`(from + 1) mod period`).
        to: u32,
    },
    /// The responder's counter moved `from → to`.
    Responder {
        /// Counter before the advance.
        from: u32,
        /// Counter after the advance.
        to: u32,
    },
}

impl Advanced {
    /// The counter movement `(from, to)` regardless of who moved.
    pub fn movement(&self) -> (u32, u32) {
        match *self {
            Advanced::Initiator { from, to } | Advanced::Responder { from, to } => (from, to),
        }
    }
}

/// The clock component: a period and the catch-up rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderlessClock {
    period: u32,
}

impl LeaderlessClock {
    /// A clock with the given period Ψ (counter values `0..period`).
    ///
    /// # Panics
    ///
    /// Panics if `period < 2`.
    pub fn new(period: u32) -> Self {
        assert!(period >= 2, "clock period must be at least 2");
        Self { period }
    }

    /// The period Ψ.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Circular distance from `x` forward to `y` (how far `y` is ahead).
    #[inline]
    pub fn ahead_by(&self, x: u32, y: u32) -> u32 {
        if y >= x {
            y - x
        } else {
            self.period - x + y
        }
    }

    /// One clock–clock interaction: the circularly-lagging counter advances
    /// by one (ties advance the initiator `a`).
    #[inline]
    pub fn interact(&self, a: &mut u32, b: &mut u32) -> Advanced {
        debug_assert!(*a < self.period && *b < self.period);
        let d = self.ahead_by(*a, *b);
        if d == 0 || d > self.period / 2 {
            // b is behind (or tie): in the tie case the initiator advances,
            // which is the "ties broken arbitrarily" of Algorithm 1.
            if d == 0 {
                let from = *a;
                *a = (*a + 1) % self.period;
                Advanced::Initiator { from, to: *a }
            } else {
                let from = *b;
                *b = (*b + 1) % self.period;
                Advanced::Responder { from, to: *b }
            }
        } else {
            let from = *a;
            *a = (*a + 1) % self.period;
            Advanced::Initiator { from, to: *a }
        }
    }
}

/// Circular spread of a set of counter values: the arc length of the
/// smallest arc containing all of them. A healthy clock keeps this well
/// below `period / 2`.
pub fn circular_spread(values: &[u32], period: u32) -> u32 {
    assert!(!values.is_empty());
    let mut sorted: Vec<u32> = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() == 1 {
        return 0;
    }
    // Largest gap between consecutive (circularly adjacent) values; the
    // spread is the complement.
    let mut largest_gap = 0;
    for w in sorted.windows(2) {
        largest_gap = largest_gap.max(w[1] - w[0]);
    }
    let wrap_gap = sorted[0] + period - sorted[sorted.len() - 1];
    largest_gap = largest_gap.max(wrap_gap);
    period - largest_gap
}

/// State of one agent in the standalone clock run: counter plus how many
/// times it has wrapped (the wrap count exists for measurement only and is
/// not part of the protocol's state space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockAgent {
    /// Counter position in `0..period`.
    pub g: u32,
    /// Completed wraps past zero.
    pub wraps: u32,
}

/// Standalone protocol: a pure population of clock agents. Used to measure
/// wave speed (counter advances per parallel time), skew and the
/// concentration of wrap times, which calibrate the tournament phase lengths
/// (experiment X12).
#[derive(Debug, Clone)]
pub struct LeaderlessClockRun {
    clock: LeaderlessClock,
    /// `first_wrap_at[w]` is the interaction at which the first agent
    /// completed wrap `w + 1` — the paper's `s(i)` milestones.
    pub first_wrap_at: Vec<u64>,
}

impl LeaderlessClockRun {
    /// A standalone run over `n` agents with the given period.
    pub fn new(n: usize, period: u32) -> (Self, Vec<ClockAgent>) {
        (
            Self {
                clock: LeaderlessClock::new(period),
                first_wrap_at: Vec::new(),
            },
            vec![ClockAgent::default(); n],
        )
    }

    /// The underlying clock component.
    pub fn clock(&self) -> &LeaderlessClock {
        &self.clock
    }
}

impl Protocol for LeaderlessClockRun {
    type State = ClockAgent;

    fn interact(&mut self, t: u64, a: &mut ClockAgent, b: &mut ClockAgent, _rng: &mut SimRng) {
        let adv = self.clock.interact(&mut a.g, &mut b.g);
        let (from, to) = adv.movement();
        if from == self.clock.period() - 1 && to == 0 {
            let agent = match adv {
                Advanced::Initiator { .. } => a,
                Advanced::Responder { .. } => b,
            };
            agent.wraps += 1;
            // The first agent to reach wrap count w defines milestone w.
            if agent.wraps as usize > self.first_wrap_at.len() {
                self.first_wrap_at.push(t);
            }
        }
    }

    fn converged(&self, _states: &[ClockAgent]) -> Option<u32> {
        None
    }

    fn encode(&self, state: &ClockAgent) -> u64 {
        u64::from(state.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, Simulation};

    #[test]
    fn lagging_counter_advances() {
        let c = LeaderlessClock::new(10);
        let (mut a, mut b) = (3u32, 5u32);
        // a is behind by 2.
        let adv = c.interact(&mut a, &mut b);
        assert_eq!(adv, Advanced::Initiator { from: 3, to: 4 });
        assert_eq!((a, b), (4, 5));
    }

    #[test]
    fn circular_wraparound_is_respected() {
        let c = LeaderlessClock::new(10);
        // b=9, a=1: a is *ahead* circularly (9 → 0 → 1), so b advances.
        let (mut a, mut b) = (1u32, 9u32);
        let adv = c.interact(&mut a, &mut b);
        assert_eq!(adv, Advanced::Responder { from: 9, to: 0 });
        assert_eq!((a, b), (1, 0));
    }

    #[test]
    fn tie_advances_initiator() {
        let c = LeaderlessClock::new(10);
        let (mut a, mut b) = (7u32, 7u32);
        let adv = c.interact(&mut a, &mut b);
        assert_eq!(adv, Advanced::Initiator { from: 7, to: 8 });
        assert_eq!((a, b), (8, 7));
    }

    #[test]
    fn spread_of_tight_cluster_is_small() {
        assert_eq!(circular_spread(&[1, 2, 3], 100), 2);
        // Cluster straddling zero.
        assert_eq!(circular_spread(&[98, 99, 0, 1], 100), 3);
        assert_eq!(circular_spread(&[5], 100), 0);
    }

    #[test]
    fn clock_population_stays_synchronised() {
        let n = 1000;
        let period = 64;
        let (proto, states) = LeaderlessClockRun::new(n, period);
        let mut sim = Simulation::new(proto, states, 11);
        sim.run(&RunOptions::with_parallel_time_budget(n, 2000.0));
        let counters: Vec<u32> = sim.states().iter().map(|s| s.g).collect();
        let spread = circular_spread(&counters, period);
        assert!(
            spread < period / 2,
            "clock skew {spread} of period {period}"
        );
        // Liveness: with ~2000 total increments per agent the clock must
        // have wrapped many times.
        assert!(
            sim.protocol().first_wrap_at.len() > 10,
            "only {} wraps",
            sim.protocol().first_wrap_at.len()
        );
    }

    #[test]
    fn clock_advances_at_constant_rate() {
        // With all n agents being clocks, total increments per interaction
        // is exactly 1, so mean counter movement per parallel time is 1.
        let n = 512;
        let period = 1 << 30; // effectively unbounded: count raw advances
        let (proto, states) = LeaderlessClockRun::new(n, period);
        let mut sim = Simulation::new(proto, states, 3);
        sim.run(&RunOptions::with_parallel_time_budget(n, 300.0));
        let mean: f64 = sim.states().iter().map(|s| s.g as f64).sum::<f64>() / n as f64;
        assert!(
            (mean - 300.0).abs() < 60.0,
            "mean advance {mean} vs expected 300"
        );
    }

    #[test]
    fn wrap_spacing_is_concentrated() {
        let n = 1000;
        let period = 60;
        let (proto, states) = LeaderlessClockRun::new(n, period);
        let mut sim = Simulation::new(proto, states, 29);
        sim.run(&RunOptions::with_parallel_time_budget(n, 3000.0));
        let marks = &sim.protocol().first_wrap_at;
        assert!(marks.len() >= 5, "need several wraps, got {}", marks.len());
        let gaps: Vec<f64> = marks.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let max = gaps.iter().cloned().fold(f64::MIN, f64::max);
        let min = gaps.iter().cloned().fold(f64::MAX, f64::min);
        // Ticks are regular: no gap strays past 3x/0.2x of the mean.
        assert!(
            max < 3.0 * mean,
            "irregular clock: max gap {max}, mean {mean}"
        );
        assert!(
            min > 0.2 * mean,
            "irregular clock: min gap {min}, mean {mean}"
        );
    }
}
