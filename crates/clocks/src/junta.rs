//! `FormJunta`: the level-race junta election of Berenbrink et al. \[11\].
//!
//! Agents start active at level 0. An *active* initiator that meets an agent
//! on the same or a higher level climbs one level; meeting a lower-level
//! agent knocks it out (inactive). Agents that reach the maximum level
//! `ℓmax` form the *junta* (and stop climbing). With
//! `ℓmax = ⌊log₂log₂ x⌋ − 3` on a population of size `x`, the junta is
//! non-empty and of size at most `x^0.98` w.h.p. (\[11\], Thm 1); the paper's
//! Claim 8 shows the slack variant `ℓmax = ⌊log₂log₂ n⌋ − 2` still works for
//! subpopulations of size ≥ √n.

use pp_engine::{Protocol, SimRng};

/// Per-agent junta-election state: the level reached and whether the agent
/// is still racing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JuntaState {
    /// Current level (`0..=ℓmax`).
    pub level: u8,
    /// Whether the agent is still actively climbing.
    pub active: bool,
}

impl JuntaState {
    /// Initial state: level 0, active.
    pub fn new() -> Self {
        Self {
            level: 0,
            active: true,
        }
    }
}

impl Default for JuntaState {
    fn default() -> Self {
        Self::new()
    }
}

/// The election component: the level cap and the race rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormJunta {
    max_level: u8,
}

impl FormJunta {
    /// An election racing to the given maximum level (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_level` is 0.
    pub fn new(max_level: u8) -> Self {
        assert!(max_level >= 1, "junta election needs at least one level");
        Self { max_level }
    }

    /// `ℓmax = max(1, ⌊log₂log₂ x⌋ − 3)`: the \[11\] setting for a population
    /// whose size `x` the agents know.
    pub fn for_population(x: usize) -> Self {
        Self::new(Self::level_cap(x, 3))
    }

    /// `ℓmax = max(1, ⌊log₂log₂ n⌋ − 2)`: the paper's §4 setting, used when a
    /// subpopulation of unknown size ≥ √n runs the election but only the
    /// global `n` is known (Claim 8).
    pub fn for_subpopulation_of(n: usize) -> Self {
        Self::new(Self::level_cap(n, 2))
    }

    fn level_cap(x: usize, slack: u8) -> u8 {
        assert!(x >= 2);
        let loglog = (x as f64).log2().log2().floor() as i64;
        (loglog - i64::from(slack)).max(1) as u8
    }

    /// The level at which agents join the junta.
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// `true` iff this agent finished the race as a junta member.
    pub fn is_junta(&self, s: &JuntaState) -> bool {
        s.level == self.max_level
    }

    /// Initiator-side race step (the responder is unchanged, as in \[11\]).
    ///
    /// Levels ≥ 1 follow the paper's description verbatim: climb when the
    /// partner is on the same or a higher level, drop out otherwise. Level 0
    /// uses \[11\]'s special start rule (the paper's footnote 3): a level-0
    /// agent climbs only past another *level-0* agent and is knocked out by
    /// anyone who already climbed — this is what makes each level roughly
    /// square the survivor density (`B_{ℓ+1} ≈ B_ℓ²/n`) and keeps the junta
    /// at `≤ x^0.98` agents.
    #[inline]
    pub fn interact(&self, a: &mut JuntaState, b: &JuntaState) {
        if !a.active {
            return;
        }
        let climbs = if a.level == 0 {
            b.level == 0
        } else {
            b.level >= a.level
        };
        if climbs {
            a.level += 1;
            if a.level >= self.max_level {
                a.level = self.max_level;
                a.active = false; // joined the junta
            }
        } else {
            a.active = false;
        }
    }
}

/// Standalone protocol measuring junta sizes and election time
/// (experiment X8).
#[derive(Debug, Clone)]
pub struct FormJuntaRun {
    election: FormJunta,
    /// Interaction at which the first agent reached `ℓmax` (`s(0)` in the
    /// paper's notation), if any.
    pub first_junta_at: Option<u64>,
}

impl FormJuntaRun {
    /// A standalone run over `n` agents with the \[11\] level cap.
    pub fn new(n: usize) -> (Self, Vec<JuntaState>) {
        (
            Self {
                election: FormJunta::for_population(n),
                first_junta_at: None,
            },
            vec![JuntaState::new(); n],
        )
    }

    /// The election component.
    pub fn election(&self) -> &FormJunta {
        &self.election
    }
}

impl Protocol for FormJuntaRun {
    type State = JuntaState;

    fn interact(&mut self, t: u64, a: &mut JuntaState, b: &mut JuntaState, _rng: &mut SimRng) {
        let was_junta = self.election.is_junta(a);
        self.election.interact(a, b);
        if !was_junta && self.election.is_junta(a) && self.first_junta_at.is_none() {
            self.first_junta_at = Some(t);
        }
    }

    fn converged(&self, states: &[JuntaState]) -> Option<u32> {
        states
            .iter()
            .all(|s| !s.active)
            .then(|| states.iter().filter(|s| self.election.is_junta(s)).count() as u32)
    }

    fn encode(&self, state: &JuntaState) -> u64 {
        u64::from(state.level) << 1 | u64::from(state.active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::{RunOptions, RunStatus, Simulation};

    #[test]
    fn level_caps_match_paper() {
        // n = 2^16: log2 log2 = 4 → cap 1 (with −3) and 2 (with −2).
        assert_eq!(FormJunta::for_population(1 << 16).max_level(), 1);
        assert_eq!(FormJunta::for_subpopulation_of(1 << 16).max_level(), 2);
        // Tiny populations clamp to 1.
        assert_eq!(FormJunta::for_population(4).max_level(), 1);
    }

    #[test]
    fn race_rules() {
        let e = FormJunta::new(3);
        let mut a = JuntaState::new();
        let peer_same = JuntaState {
            level: 0,
            active: true,
        };
        e.interact(&mut a, &peer_same);
        assert_eq!(a.level, 1);
        assert!(a.active);
        // Meeting a lower level knocks out.
        let lower = JuntaState {
            level: 0,
            active: false,
        };
        e.interact(&mut a, &lower);
        assert!(!a.active);
        assert_eq!(a.level, 1);
        // Inactive agents never move again.
        let higher = JuntaState {
            level: 3,
            active: false,
        };
        e.interact(&mut a, &higher);
        assert_eq!(a.level, 1);
    }

    #[test]
    fn level_zero_start_rule() {
        let e = FormJunta::new(3);
        // A level-0 agent meeting someone who already climbed is knocked
        // out without climbing.
        let mut a = JuntaState::new();
        let climbed = JuntaState {
            level: 1,
            active: true,
        };
        e.interact(&mut a, &climbed);
        assert!(!a.active);
        assert_eq!(a.level, 0);
        // …while meeting an inactive level-0 agent still lets it climb.
        let mut c = JuntaState::new();
        let dead_zero = JuntaState {
            level: 0,
            active: false,
        };
        e.interact(&mut c, &dead_zero);
        assert_eq!(c.level, 1);
        assert!(c.active);
    }

    #[test]
    fn reaching_cap_joins_junta_and_deactivates() {
        let e = FormJunta::new(1);
        let mut a = JuntaState::new();
        e.interact(&mut a, &JuntaState::new());
        assert!(e.is_junta(&a));
        assert!(!a.active);
    }

    #[test]
    fn election_terminates_with_small_nonempty_junta() {
        let n = 20_000;
        let (proto, states) = FormJuntaRun::new(n);
        let mut sim = Simulation::new(proto, states, 77);
        let r = sim.run(&RunOptions::with_parallel_time_budget(n, 10_000.0));
        assert_eq!(r.status, RunStatus::Converged);
        let junta = r.output.expect("junta size") as usize;
        assert!(junta >= 1, "junta must be non-empty");
        // x^0.98 bound with slack: at n=20k, n^0.98 ≈ 16.5k; the realistic
        // sizes are far smaller, but we only assert the theorem's bound.
        let bound = (n as f64).powf(0.98).ceil() as usize;
        assert!(junta <= bound, "junta {junta} exceeds n^0.98 = {bound}");
        assert!(sim.protocol().first_junta_at.is_some());
    }

    #[test]
    fn junta_shrinks_with_higher_cap() {
        let run = |cap: u8| {
            let n = 20_000usize;
            let proto = FormJuntaRun {
                election: FormJunta::new(cap),
                first_junta_at: None,
            };
            let states = vec![JuntaState::new(); n];
            let mut sim = Simulation::new(proto, states, 5);
            let r = sim.run(&RunOptions::with_parallel_time_budget(n, 20_000.0));
            r.output.expect("converged") as usize
        };
        let j1 = run(1);
        let j3 = run(3);
        assert!(
            j3 < j1,
            "junta at cap 3 ({j3}) should be smaller than at cap 1 ({j1})"
        );
        assert!(j3 >= 1);
    }
}
