//! # exact-plurality
//!
//! A from-scratch Rust reproduction of *Population Protocols for Exact
//! Plurality Consensus: How a small chance of failure helps to eliminate
//! insignificant opinions* (PODC 2022).
//!
//! `n` anonymous agents hold one of `k` opinions and interact in uniformly
//! random pairs; the goal is that all agents agree on the initially most
//! frequent opinion even when its lead over the runner-up is a single agent.
//! The paper shows that accepting a `1 − n^(−Ω(1))` success probability
//! breaks the `Ω(k²)` state lower bound for always-correct protocols, and
//! gives three protocols; all three are implemented here together with every
//! substrate they rely on (phase clocks, junta election, exact majority,
//! leader election, load balancing, epidemic broadcast).
//!
//! This facade crate re-exports the workspace so that examples and downstream
//! users need a single dependency. See `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the measured reproduction of every theorem.
//!
//! # Quickstart
//!
//! ```
//! use exact_plurality::prelude::*;
//!
//! // 600 agents, 4 opinions, plurality leads by exactly one agent.
//! let counts = Counts::bias_one(600, 4);
//! let assignment = counts.assignment();
//! let (protocol, states) = SimpleAlgorithm::new(&assignment, Tuning::default());
//! let mut sim = Simulation::new(protocol, states, 7);
//! let result = sim.run(&RunOptions::with_parallel_time_budget(600, 500_000.0));
//! assert_eq!(result.output, Some(assignment.plurality()));
//! ```

pub use plurality_core as core;
pub use pp_baselines as baselines;
pub use pp_clocks as clocks;
pub use pp_dynamics as dynamics;
pub use pp_engine as engine;
pub use pp_leader as leader;
pub use pp_majority as majority;
pub use pp_stats as stats;
pub use pp_workloads as workloads;

/// The most common imports for running the paper's protocols.
pub mod prelude {
    pub use plurality_core::improved::ImprovedAlgorithm;
    pub use plurality_core::simple::SimpleAlgorithm;
    pub use plurality_core::unordered::UnorderedAlgorithm;
    pub use plurality_core::Tuning;
    pub use pp_engine::{
        BatchSimulation, Census, FaultPlan, FaultSpec, PairwiseBatchSimulation, Protocol,
        RunOptions, RunResult, RunStatus, SchedulerSpec, SeqTable, SimRng, Simulation,
        TableProtocol,
    };
    pub use pp_workloads::{Counts, OpinionAssignment};
}
